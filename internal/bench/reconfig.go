package bench

import (
	"fmt"
	"strings"

	"heron/internal/obs"
	"heron/internal/reconfig"
)

// ReconfigResult is a sweep of seeded elastic-reconfiguration scenarios:
// each row is one full deployment run with a live membership or
// repartitioning change applied under client load, with its
// linearizability verdict. Reports are virtual-state only, so the same
// flags produce byte-identical JSON across invocations.
type ReconfigResult struct {
	Scenarios []*reconfig.Report `json:"scenarios"`
}

// AllConverged reports whether every scenario converged (committed or
// cleanly rolled back) with a checked, linearizable history.
func (r *ReconfigResult) AllConverged() bool {
	for _, rep := range r.Scenarios {
		if !rep.Checked || !rep.Linearizable {
			return false
		}
		if rep.Committed && rep.EpochAfter != rep.EpochBefore+1 {
			return false
		}
		if !rep.Committed && rep.EpochAfter != rep.EpochBefore {
			return false
		}
	}
	return true
}

// Format renders the sweep as a table.
func (r *ReconfigResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-10s %11s %9s %6s %6s %6s %7s %9s %5s %7s %10s  %s\n",
		"seed", "scenario", "parts", "replicas", "epoch", "commit", "moved", "fenced", "refreshes", "ops", "failed", "verdict", "note")
	for _, rep := range r.Scenarios {
		verdict := "DEGRADED"
		if rep.Checked {
			if rep.Linearizable {
				verdict = "LINEARIZ."
			} else {
				verdict = "VIOLATION"
			}
		}
		fmt.Fprintf(&b, "%-6d %-10s %5d->%-4d %4d->%-4d %6d %6v %6d %7d %9d %5d %7d %10s  %s\n",
			rep.Seed, rep.Scenario,
			rep.PartitionsBefore, rep.PartitionsAfter,
			rep.ReplicasBefore, rep.ReplicasAfter,
			rep.EpochAfter, rep.Committed, rep.MovedObjects, rep.FencedReplicas,
			rep.EpochRefreshes, rep.Ops, rep.FailedOps, verdict, rep.Err)
	}
	return b.String()
}

// RunReconfig sweeps the elastic-reconfiguration scenarios. With scenario
// "" the sweep runs every built-in scenario (scaleout, scalein, split,
// crash) on the given seed; otherwise it runs the one scenario `runs`
// times on seeds base+i, so a failing run replays standalone with its
// printed seed.
func RunReconfig(scenario string, runs int, seed int64, o *obs.Observer) (*ReconfigResult, error) {
	res := &ReconfigResult{}
	run := func(sc string, sd int64) error {
		opt := reconfig.DefaultOptions(sc, sd)
		opt.Obs = o
		rep, err := reconfig.Run(opt)
		if err != nil {
			return fmt.Errorf("scenario %s (seed %d): %w", sc, sd, err)
		}
		res.Scenarios = append(res.Scenarios, rep)
		releaseMemory()
		return nil
	}
	if scenario == "" {
		for _, sc := range reconfig.Scenarios {
			if err := run(sc, seed); err != nil {
				return nil, err
			}
		}
		return res, nil
	}
	if runs <= 0 {
		runs = 1
	}
	for i := 0; i < runs; i++ {
		if err := run(scenario, seed+int64(i)); err != nil {
			return nil, err
		}
	}
	return res, nil
}
