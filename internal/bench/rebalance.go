package bench

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"strings"

	"heron/internal/core"
	"heron/internal/multicast"
	"heron/internal/obs"
	"heron/internal/rdma"
	"heron/internal/rebalance"
	"heron/internal/reconfig"
	"heron/internal/sim"
	"heron/internal/store"
)

// Rebalance benchmark: does the closed-loop controller actually recover
// the tail? A closed-loop client population drives a two-partition
// deployment whose hotspot shifts (or erupts) mid-run; the same seeded
// workload runs once with the controller off and once with it on, and
// the per-interval p99 series shows whether splitting the hot range
// brought the tail back down — and how long that took.

// Rebalance bench scenarios.
const (
	// BenchHotShift parks 90% of the load on partition 0's head keys,
	// then shifts the hotspot to partition 1's head at ShiftAt. With the
	// controller on, the first hotspot is shed during the pre-shift
	// phase and the second one after the shift — the benchmark scores
	// the second recovery.
	BenchHotShift = "hotshift"
	// BenchFlash runs uniform load until ShiftAt, when a flash crowd
	// concentrates 80% of submissions on four keys of partition 0.
	BenchFlash = "flash"
)

// RebalanceScenarios lists the benchmark scenarios.
var RebalanceScenarios = []string{BenchHotShift, BenchFlash}

// RebalanceOptions configure one off/on benchmark pair.
type RebalanceOptions struct {
	Scenario string
	Seed     int64

	Keys    int
	Clients int
	// ExecCost is the modeled per-request execution CPU: the serial
	// resource that makes a hot partition queue.
	ExecCost sim.Duration
	// Think is the mean closed-loop client think time.
	Think sim.Duration

	Window  sim.Duration // measurement window; clients stop at the end
	ShiftAt sim.Duration // hotspot shift instant
	// Interval buckets completions for the per-interval p99 series.
	Interval sim.Duration

	OpTimeout    sim.Duration
	FenceTimeout sim.Duration

	// Policy overrides the benchmark controller policy when non-nil.
	Policy *rebalance.Policy

	Obs *obs.Observer
}

// DefaultRebalanceOptions sizes a scenario so one run finishes in
// seconds of wall clock.
func DefaultRebalanceOptions(scenario string, seed int64) RebalanceOptions {
	return RebalanceOptions{
		Scenario:     scenario,
		Seed:         seed,
		Keys:         64,
		Clients:      32,
		ExecCost:     2 * sim.Microsecond,
		Think:        20 * sim.Microsecond,
		Window:       40 * sim.Millisecond,
		ShiftAt:      16 * sim.Millisecond,
		Interval:     2 * sim.Millisecond,
		OpTimeout:    20 * sim.Millisecond,
		FenceTimeout: 10 * sim.Millisecond,
	}
}

// benchRebalancePolicy is the controller policy the benchmark runs
// under: decide every millisecond, shed a partition 30% above the mean
// after two hot ticks, at most one change per 3ms.
func benchRebalancePolicy(o RebalanceOptions) rebalance.Policy {
	if o.Policy != nil {
		return *o.Policy
	}
	pol := rebalance.DefaultPolicy()
	pol.Tick = 1 * sim.Millisecond
	pol.Cooldown = 3 * sim.Millisecond
	pol.HotRatio = 1.3
	pol.ColdRatio = 0.85
	pol.MinRate = 1000
	pol.DominantShare = 0.6
	pol.MaxChanges = 8
	pol.MaxPartitions = 2 // moves and splits only: no spare nodes here
	return pol
}

// RebalanceRunStats is the outcome of one run (controller off or on).
// Every field derives from virtual-clock state: same seed, same bytes.
type RebalanceRunStats struct {
	Rebalance bool  `json:"rebalance"`
	Ops       int   `json:"ops"`
	FailedOps int   `json:"failed_ops"`
	MeanNS    int64 `json:"mean_ns"`
	P99NS     int64 `json:"p99_ns"`

	// PreShiftP99NS is the p99 over the settled half of the pre-shift
	// phase (the recovery threshold derives from it); TailP99NS the p99
	// over the final quarter of the window — where the shift either got
	// absorbed or didn't.
	PreShiftP99NS int64 `json:"pre_shift_p99_ns"`
	TailP99NS     int64 `json:"tail_p99_ns"`
	// RecoveryNS is the virtual time from the shift until the start of
	// two consecutive intervals whose p99 is back within 1.5x of the
	// pre-shift p99 (-1 = never recovered inside the window).
	RecoveryNS int64 `json:"recovery_ns"`

	IntervalP99NS []int64 `json:"interval_p99_ns"`
	IntervalOps   []int   `json:"interval_ops"`

	ChangesApplied int                     `json:"changes_applied"`
	ChangesAborted int                     `json:"changes_aborted"`
	Decisions      []rebalance.Decision    `json:"decisions,omitempty"`
	Mig            reconfig.MigrationStats `json:"migration"`
	EpochAfter     uint64                  `json:"epoch_after"`
	Errors         []string                `json:"errors,omitempty"`
}

// RebalanceResult pairs the controller-off and controller-on runs of
// one seeded scenario.
type RebalanceResult struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Keys     int    `json:"keys"`
	Clients  int    `json:"clients"`

	WindowNS   int64 `json:"window_ns"`
	ShiftNS    int64 `json:"shift_ns"`
	IntervalNS int64 `json:"interval_ns"`

	Off RebalanceRunStats `json:"off"`
	On  RebalanceRunStats `json:"on"`

	// Improved is the CI gate: the controller committed at least one
	// change and the on-run's tail p99 beats the off-run's.
	Improved bool `json:"improved"`
}

// rebalApp executes blind single-key writes with a modeled execution
// cost; the payload is the 8-byte target OID. HeatKey is the OID
// itself, so the planner's identity KeyToOID applies.
type rebalApp struct{ cost sim.Duration }

func (a rebalApp) ReadSet(req *core.Request) []store.OID { return nil }

func (a rebalApp) Execute(ctx *core.ExecContext) core.Outcome {
	oid := store.OID(binary.LittleEndian.Uint64(ctx.Req.Payload[:8]))
	return core.Outcome{
		Response: []byte{1},
		Writes:   []core.Write{{OID: oid, Val: ctx.Req.Payload[:8]}},
		CPU:      a.cost,
	}
}

func (a rebalApp) HeatKey(req *core.Request) uint64 {
	return binary.LittleEndian.Uint64(req.Payload[:8])
}

// pickRebalanceKey draws one key for a scenario phase.
func pickRebalanceKey(scenario string, shifted bool, rng *rand.Rand, keys int) store.OID {
	half := keys / 2
	switch scenario {
	case BenchFlash:
		if shifted && rng.Intn(100) < 80 {
			return store.OID(rng.Intn(4))
		}
		return store.OID(rng.Intn(keys))
	default: // BenchHotShift
		head := 0
		if shifted {
			head = half
		}
		if rng.Intn(100) < 90 {
			return store.OID(head + rng.Intn(4))
		}
		return store.OID(rng.Intn(keys))
	}
}

// RunRebalance executes the off/on pair for one seeded scenario.
func RunRebalance(o RebalanceOptions) (*RebalanceResult, error) {
	known := false
	for _, sc := range RebalanceScenarios {
		known = known || sc == o.Scenario
	}
	if !known {
		return nil, fmt.Errorf("rebalance bench: unknown scenario %q (have %v)", o.Scenario, RebalanceScenarios)
	}
	if o.Keys < 8 || o.Keys%2 != 0 {
		return nil, fmt.Errorf("rebalance bench: need an even key count >= 8, got %d", o.Keys)
	}
	if o.Interval <= 0 || o.Window <= 0 || o.ShiftAt <= 0 || o.ShiftAt >= o.Window {
		return nil, fmt.Errorf("rebalance bench: need 0 < shift < window and a positive interval")
	}

	res := &RebalanceResult{
		Scenario:   o.Scenario,
		Seed:       o.Seed,
		Keys:       o.Keys,
		Clients:    o.Clients,
		WindowNS:   int64(o.Window),
		ShiftNS:    int64(o.ShiftAt),
		IntervalNS: int64(o.Interval),
	}
	off, err := runRebalanceOnce(o, false)
	if err != nil {
		return nil, err
	}
	on, err := runRebalanceOnce(o, true)
	if err != nil {
		return nil, err
	}
	res.Off, res.On = *off, *on
	res.Improved = on.ChangesApplied > 0 && on.TailP99NS > 0 &&
		off.TailP99NS > 0 && on.TailP99NS < off.TailP99NS
	return res, nil
}

// runRebalanceOnce runs the seeded workload with the controller off or
// on and scores the latency series.
func runRebalanceOnce(o RebalanceOptions, on bool) (*RebalanceRunStats, error) {
	const maxParts, groupSize = 2, 3
	half := store.OID(o.Keys / 2)
	groups := [][]rdma.NodeID{{1, 2, 3}, {4, 5, 6}}
	initial := &reconfig.Configuration{
		Epoch:  1,
		Groups: groups,
		Routes: []reconfig.Range{
			{Lo: 0, Hi: half - 1, Part: 0},
			{Lo: half, Hi: store.OID(o.Keys) - 1, Part: 1},
		},
	}
	newApp := func(core.PartitionID, int) core.Application { return rebalApp{cost: o.ExecCost} }

	s := sim.NewScheduler()
	cfg := core.DefaultConfig(multicast.DefaultConfig(groups))
	cfg.StoreCapacity = o.Keys*store.SlotSize(8) + 1<<12
	cfg.MaxPartitions = maxParts
	cfg.MaxGroupSize = groupSize
	d, err := core.NewDeployment(s, cfg, newApp, initial)
	if err != nil {
		return nil, err
	}
	err = d.PopulateAll(func(part core.PartitionID, rank int, rep *core.Replica) error {
		for k := 0; k < o.Keys; k++ {
			oid := store.OID(k)
			if initial.PartitionOf(oid) != part {
				continue
			}
			if err := rep.Store().Register(oid, 8); err != nil {
				return err
			}
			if err := rep.Store().Init(oid, make([]byte, 8)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	d.Fabric.SetFaultSeed(o.Seed)

	// Both runs carry the full reconfiguration plane (the manager installs
	// the replicas' epochs, so epoch-tagged submissions clear fencing);
	// only the on-run attaches the controller.
	stats := &RebalanceRunStats{Rebalance: on}
	obsv := o.Obs
	if on && obsv.Heat() == nil {
		obsv = obs.NewFull(obsv.Tracer(), obsv.Metrics(), obsv.CritPath(),
			obs.NewHeat(maxParts, 250*sim.Microsecond, 8), obsv.Flight())
	}
	d.Observe(obsv)
	mgr := reconfig.NewManager(d, initial, reconfig.ManagerOptions{
		Apps: newApp, FenceTimeout: o.FenceTimeout, Obs: obsv,
	})
	var ctl *rebalance.Controller
	if on {
		ctl = rebalance.New(mgr, obsv.Heat(), benchRebalancePolicy(o))
		ctl.Observe(obsv)
		ctl.Until = sim.Time(o.Window)
	}
	d.Start()
	if ctl != nil {
		ctl.Start(s)
	}

	// Completion-time latency buckets: the per-interval p99 series the
	// recovery score reads off.
	intervals := int(o.Window / o.Interval)
	recs := make([]*LatencyRecorder, intervals)
	for i := range recs {
		recs[i] = &LatencyRecorder{}
	}
	overall := &LatencyRecorder{}

	horizon := sim.Time(o.Window)
	for ci := 0; ci < o.Clients; ci++ {
		ci := ci
		cr := reconfig.NewClientRouter(d.NewClient(), initial)
		rng := rand.New(rand.NewSource(o.Seed*1000 + int64(ci)))
		s.Spawn(fmt.Sprintf("rb-client%d", ci), func(p *sim.Proc) {
			payload := make([]byte, 8)
			for p.Now() < horizon {
				key := pickRebalanceKey(o.Scenario, p.Now() >= sim.Time(o.ShiftAt), rng, o.Keys)
				binary.LittleEndian.PutUint64(payload, uint64(key))
				call := p.Now()
				_, ok := cr.SubmitTimeout(p, []store.OID{key}, payload, o.OpTimeout)
				stats.Ops++
				if !ok {
					stats.FailedOps++
					continue
				}
				done := p.Now()
				lat := sim.Duration(done - call)
				overall.Add(lat)
				idx := int(done / sim.Time(o.Interval))
				if idx >= intervals {
					idx = intervals - 1
				}
				recs[idx].Add(lat)
				p.Sleep(sim.Duration(1+rng.Int63n(2*int64(o.Think))) * sim.Nanosecond)
			}
		})
	}

	if err := s.RunUntil(horizon + sim.Time(5*sim.Millisecond)); err != nil {
		return nil, err
	}

	if overall.Count() > 0 {
		stats.MeanNS = int64(overall.Mean())
		stats.P99NS = int64(overall.Percentile(99))
	}
	stats.IntervalP99NS = make([]int64, intervals)
	stats.IntervalOps = make([]int, intervals)
	for i, r := range recs {
		stats.IntervalOps[i] = r.Count()
		if r.Count() > 0 {
			stats.IntervalP99NS[i] = int64(r.Percentile(99))
		}
	}

	// Pre-shift baseline: the settled second half of the pre-shift phase
	// (with the controller on, the first shed has landed by then).
	shiftIdx := int(o.ShiftAt / o.Interval)
	stats.PreShiftP99NS = mergedP99(recs[shiftIdx/2 : shiftIdx])
	stats.TailP99NS = mergedP99(recs[intervals-intervals/4:])

	// Recovery: two consecutive post-shift intervals back within 1.5x of
	// the pre-shift p99.
	stats.RecoveryNS = -1
	if thr := stats.PreShiftP99NS + stats.PreShiftP99NS/2; thr > 0 {
		for i := shiftIdx; i < intervals-1; i++ {
			if intervalRecovered(recs[i], stats.IntervalP99NS[i], thr) &&
				intervalRecovered(recs[i+1], stats.IntervalP99NS[i+1], thr) {
				stats.RecoveryNS = int64(i)*int64(o.Interval) - int64(o.ShiftAt)
				if stats.RecoveryNS < 0 {
					stats.RecoveryNS = 0
				}
				break
			}
		}
	}

	stats.EpochAfter = mgr.Current().Epoch
	stats.Mig = mgr.TotalMig
	if ctl != nil {
		stats.ChangesApplied = ctl.Applied
		stats.ChangesAborted = ctl.Aborted
		stats.Decisions = ctl.ActingLog()
		stats.Errors = ctl.Errors
	}
	releaseMemory()
	return stats, nil
}

// mergedP99 merges interval recorders and returns their p99 (0 when
// empty).
func mergedP99(recs []*LatencyRecorder) int64 {
	m := &LatencyRecorder{}
	for _, r := range recs {
		for _, s := range r.Samples() {
			m.Add(s)
		}
	}
	if m.Count() == 0 {
		return 0
	}
	return int64(m.Percentile(99))
}

// intervalRecovered reports whether one interval counts as recovered.
func intervalRecovered(r *LatencyRecorder, p99, thr int64) bool {
	return r.Count() > 0 && p99 <= thr
}

// RebalanceSweep is the `heron-bench rebalance` payload: the off/on
// benchmark pairs plus the linearizability verification runs (including
// the mid-rebalance crash scenarios).
type RebalanceSweep struct {
	Bench  []*RebalanceResult  `json:"bench,omitempty"`
	Verify []*rebalance.Report `json:"verify,omitempty"`
}

// RunRebalanceSweep runs the benchmark pairs and verification scenarios.
// scenario filters to one benchmark scenario (hotshift, flash) or one
// verification scenario (skew, scaleout, feedercrash, donorcrash);
// empty runs everything.
func RunRebalanceSweep(scenario string, seed int64, o *obs.Observer) (*RebalanceSweep, error) {
	benchScenarios := RebalanceScenarios
	verifyScenarios := rebalance.Scenarios
	if scenario != "" {
		benchScenarios, verifyScenarios = nil, nil
		for _, sc := range RebalanceScenarios {
			if sc == scenario {
				benchScenarios = []string{sc}
			}
		}
		for _, sc := range rebalance.Scenarios {
			if sc == scenario {
				verifyScenarios = []string{sc}
			}
		}
		if len(benchScenarios) == 0 && len(verifyScenarios) == 0 {
			return nil, fmt.Errorf("rebalance: unknown scenario %q (bench %v, verify %v)",
				scenario, RebalanceScenarios, rebalance.Scenarios)
		}
	}
	sweep := &RebalanceSweep{}
	for _, sc := range benchScenarios {
		opts := DefaultRebalanceOptions(sc, seed)
		opts.Obs = o
		res, err := RunRebalance(opts)
		if err != nil {
			return nil, err
		}
		sweep.Bench = append(sweep.Bench, res)
	}
	for _, sc := range verifyScenarios {
		vo := rebalance.DefaultOptions(sc, seed)
		vo.Obs = o
		rep, err := rebalance.Run(vo)
		if err != nil {
			return nil, err
		}
		sweep.Verify = append(sweep.Verify, rep)
	}
	return sweep, nil
}

// verifySafe reports whether one verification run counts as safe: a
// checked-linearizable history, or a cleanly degraded one (timed-out
// operations under injected faults) — never a violation.
func verifySafe(r *rebalance.Report) bool {
	if r.Checked {
		return r.Linearizable
	}
	return r.FailedOps > 0
}

// Gate is the CI pass condition: every benchmark pair improved the tail
// and recovered, every verification run is safe, and the fault-free
// verification scenarios actually rebalanced under a checked history.
func (r *RebalanceSweep) Gate() bool {
	for _, b := range r.Bench {
		if !b.Improved || b.On.RecoveryNS < 0 {
			return false
		}
	}
	for _, v := range r.Verify {
		if !verifySafe(v) {
			return false
		}
		if v.Scenario == rebalance.ScenarioSkew || v.Scenario == rebalance.ScenarioScaleOut {
			if !v.Checked || v.ChangesApplied == 0 {
				return false
			}
		}
	}
	return true
}

// Format renders the sweep.
func (r *RebalanceSweep) Format() string {
	var b strings.Builder
	for _, res := range r.Bench {
		b.WriteString(res.Format())
	}
	if len(r.Verify) > 0 {
		fmt.Fprintf(&b, "verification (lincheck under live rebalancing):\n")
		fmt.Fprintf(&b, "%-14s %6s %6s %8s %8s %8s %8s  %s\n",
			"scenario", "parts", "epoch", "changes", "crashes", "ops", "failed", "verdict")
		for _, v := range r.Verify {
			verdict := "linearizable"
			switch {
			case v.Checked && !v.Linearizable:
				verdict = "VIOLATION"
			case !v.Checked:
				verdict = "degraded (unchecked)"
			}
			fmt.Fprintf(&b, "%-14s %2d->%-3d %2d->%-3d %8d %8d %8d %8d  %s\n",
				v.Scenario, v.PartitionsBefore, v.PartitionsAfter,
				v.EpochBefore, v.EpochAfter,
				v.ChangesApplied, v.Crashes, v.Ops, v.FailedOps, verdict)
		}
	}
	fmt.Fprintf(&b, "gate (tails improved, histories safe): %v\n", r.Gate())
	return b.String()
}

// Format renders the off/on comparison as a table.
func (r *RebalanceResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Rebalance bench: %s (seed %d, %d keys, %d clients, shift @ %s, window %s)\n",
		r.Scenario, r.Seed, r.Keys, r.Clients,
		fmtDur(sim.Duration(r.ShiftNS)), fmtDur(sim.Duration(r.WindowNS)))
	fmt.Fprintf(&b, "%-16s %8s %7s %10s %14s %10s %10s %8s\n",
		"controller", "ops", "failed", "p99", "pre-shift p99", "tail p99", "recovery", "changes")
	row := func(name string, st *RebalanceRunStats) {
		rec := "-"
		if st.RecoveryNS >= 0 {
			rec = fmtDur(sim.Duration(st.RecoveryNS))
		}
		fmt.Fprintf(&b, "%-16s %8d %7d %10s %14s %10s %10s %8d\n",
			name, st.Ops, st.FailedOps,
			fmtDur(sim.Duration(st.P99NS)), fmtDur(sim.Duration(st.PreShiftP99NS)),
			fmtDur(sim.Duration(st.TailP99NS)), rec, st.ChangesApplied)
	}
	row("off", &r.Off)
	row("on", &r.On)
	if r.Off.TailP99NS > 0 && r.On.TailP99NS > 0 {
		fmt.Fprintf(&b, "tail p99 ratio off/on: %.2fx (improved=%v)\n",
			float64(r.Off.TailP99NS)/float64(r.On.TailP99NS), r.Improved)
	}
	for _, d := range r.On.Decisions {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}
