package bench

import (
	"fmt"
	"strings"

	"heron/internal/chaos"
	"heron/internal/obs"
	"heron/internal/persist"
)

// ChaosResult is a sweep of seeded chaos schedules: each row is one full
// deployment run under one generated fault script, with its
// linearizability verdict. Reports are virtual-state only, so the same
// flags produce byte-identical JSON across invocations.
type ChaosResult struct {
	Schedules []*chaos.Report `json:"schedules"`
}

// AllLinearizable reports whether every checked schedule passed and none
// failed to check (excluding deliberate overload schedules, which report
// clean degradation instead of a verdict).
func (r *ChaosResult) AllLinearizable() bool {
	for _, rep := range r.Schedules {
		if rep.Profile == "overload" {
			continue
		}
		if !rep.Checked || !rep.Linearizable {
			return false
		}
	}
	return true
}

// Format renders the sweep as a table.
func (r *ChaosResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-12s %7s %5s %7s %8s %9s %6s %6s %10s  %s\n",
		"seed", "profile", "events", "ops", "failed", "crashes", "recovers", "parts", "heals", "verdict", "note")
	for _, rep := range r.Schedules {
		verdict := "DEGRADED"
		if rep.Checked {
			if rep.Linearizable {
				verdict = "LINEARIZ."
			} else {
				verdict = "VIOLATION"
			}
		}
		fmt.Fprintf(&b, "%-6d %-12s %7d %5d %7d %8d %9d %6d %6d %10s  %s\n",
			rep.Seed, rep.Profile, rep.Events, rep.Ops, rep.FailedOps,
			rep.Crashes, rep.Recoveries, rep.Partitions, rep.Heals, verdict, rep.Err)
	}
	return b.String()
}

// RunChaos sweeps `schedules` seeded fault schedules. With profile ""
// the sweep rotates through the generator profiles (churn, partitions,
// slownic, mixed); otherwise every schedule uses the given profile.
// Schedule i uses seed base+i, so a failing schedule replays standalone
// with its printed seed and profile. A non-empty flightDir enables the
// flight recorder's auto-dumps (crash, violation, sim error) into that
// directory.
func RunChaos(schedules int, seed int64, profile, flightDir string, o *obs.Observer) (*ChaosResult, error) {
	if schedules <= 0 {
		return nil, fmt.Errorf("bench: chaos needs at least one schedule, got %d", schedules)
	}
	res := &ChaosResult{}
	for i := 0; i < schedules; i++ {
		opt := chaos.DefaultOptions()
		prof := profile
		if prof == "" {
			prof = chaos.Profiles[i%len(chaos.Profiles)]
		}
		sc, err := chaos.Generate(prof, seed+int64(i), opt.Partitions, opt.Replicas)
		if err != nil {
			return nil, err
		}
		opt.Schedule = sc
		opt.Obs = o
		opt.FlightDir = flightDir
		if prof == "durable" {
			// The durable profile exercises the checkpoint + delta recovery
			// path; a wider store makes the delta saving visible.
			opt.Keys = 64
			opt.Persist = &persist.Options{}
		}
		rep, err := chaos.Run(opt)
		if err != nil {
			return nil, fmt.Errorf("schedule %d (profile %s, seed %d): %w", i, prof, seed+int64(i), err)
		}
		res.Schedules = append(res.Schedules, rep)
		releaseMemory()
	}
	return res, nil
}
