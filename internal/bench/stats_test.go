package bench

import (
	"testing"

	"heron/internal/sim"
)

// TestPercentileNearestRank pins the nearest-rank rule:
// index = ceil(p/100*n) - 1 over the sorted samples.
func TestPercentileNearestRank(t *testing.T) {
	tests := []struct {
		name    string
		samples []sim.Duration
		p       float64
		want    sim.Duration
	}{
		{"p50 of 10 is the 5th sample", seq(10), 50, 5},
		{"p90 of 10 is the 9th sample", seq(10), 90, 9},
		{"p99 of 10 rounds up to the 10th", seq(10), 99, 10},
		{"p100 of 10 is the max", seq(10), 100, 10},
		{"p1 of 10 rounds up to the 1st", seq(10), 1, 1},
		{"p50 of 1 is the only sample", seq(1), 50, 1},
		{"p100 of 1 is the only sample", seq(1), 100, 1},
		{"p50 of 2 is the lower sample", seq(2), 50, 1},
		{"p51 of 2 is the upper sample", seq(2), 51, 2},
		{"p50 of 100 is the 50th", seq(100), 50, 50},
		{"p95 of 100 is the 95th", seq(100), 95, 95},
		{"p99 of 100 is the 99th", seq(100), 99, 99},
		{"p99 of 200 is the 198th", seq(200), 99, 198},
		{"near-zero percentile is the min", seq(100), 0.0001, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var r LatencyRecorder
			// Insert in reverse to exercise sorting.
			for i := len(tt.samples) - 1; i >= 0; i-- {
				r.Add(tt.samples[i])
			}
			if got := r.Percentile(tt.p); got != tt.want {
				t.Fatalf("Percentile(%v) of %d samples = %v, want %v", tt.p, len(tt.samples), got, tt.want)
			}
		})
	}
}

// seq returns the samples 1..n ns, so sample values double as 1-based
// ranks in the assertions.
func seq(n int) []sim.Duration {
	out := make([]sim.Duration, n)
	for i := range out {
		out[i] = sim.Duration(i + 1)
	}
	return out
}

func TestPercentileEmpty(t *testing.T) {
	var r LatencyRecorder
	if got := r.Percentile(50); got != 0 {
		t.Fatalf("Percentile on empty recorder = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	var r LatencyRecorder
	for _, d := range []sim.Duration{30, 10, 20} {
		r.Add(d)
	}
	if r.Min() != 10 || r.Max() != 30 {
		t.Fatalf("Min/Max = %v/%v, want 10/30", r.Min(), r.Max())
	}
}
