package bench

import (
	"fmt"
	"strings"

	"heron/internal/core"
	"heron/internal/multicast"
	"heron/internal/obs"
	"heron/internal/sim"
	"heron/internal/tpcc"
)

// Table1Partition is one partition row of Table I.
type Table1Partition struct {
	PartitionID  int
	DelayedPct   float64
	AverageDelay sim.Duration
}

// Table1Config is one (partitions, replicas) configuration.
type Table1Config struct {
	Partitions int
	Replicas   int
	Throughput float64
	Latency    sim.Duration
	Rows       []Table1Partition
}

// Table1Result is the full table.
type Table1Result struct {
	Configs []Table1Config
}

// delayedTracer aggregates Table I's delayed-transaction statistics.
type delayedTracer struct {
	multi   int
	delayed int
	wait    sim.Duration
}

func (t *delayedTracer) RequestDone(part core.PartitionID, rank int, id multicast.MsgID, rec core.TraceRecord) {
	if !rec.MultiPartition {
		return
	}
	t.multi++
	if rec.Delayed {
		t.delayed++
		t.wait += rec.DelayWait
	}
}

// RunTable1 regenerates Table I: the fraction of transactions for which,
// at the instant a coordination majority was present, records from all
// replicas were not — and how long the tentative wait for all of them
// took. Measured at saturation, per partition id, for {2,4} partitions x
// {3,5} replicas.
func RunTable1(window sim.Duration, o *obs.Observer) (*Table1Result, error) {
	if window <= 0 {
		window = 150 * sim.Millisecond
	}
	res := &Table1Result{}
	for _, parts := range []int{2, 4} {
		for _, replicas := range []int{3, 5} {
			opt := DefaultOptions(parts)
			opt.Replicas = replicas
			opt.Window = window
			opt.Obs = o.Scope(fmt.Sprintf("t1-%dp%dr", parts, replicas))
			// A generous cut-off measures the true wait-for-all delay.
			opt.CutoffDelay = sim.Duration(sim.Millisecond)

			s := sim.NewScheduler()
			d, _, err := BuildHeron(s, opt)
			if err != nil {
				return nil, err
			}
			tracers := make([]*delayedTracer, parts)
			for g := 0; g < parts; g++ {
				tracers[g] = &delayedTracer{}
				for r := 0; r < replicas; r++ {
					d.Replica(core.PartitionID(g), r).SetTracer(tracers[g])
				}
			}

			lat := &LatencyRecorder{}
			completed := 0
			warmupEnd := sim.Time(opt.Warmup)
			measureEnd := warmupEnd + sim.Time(opt.Window)
			nClients := opt.ClientsPerPartition * parts
			for ci := 0; ci < nClients; ci++ {
				ci := ci
				cl := d.NewClient()
				w := tpcc.NewWorkload(opt.Seed+int64(ci)*7919, parts, opt.Scale)
				w.HomeWID = ci%parts + 1
				s.Spawn(fmt.Sprintf("t1-client%d", ci), func(p *sim.Proc) {
					for {
						txn := w.Next()
						t0 := p.Now()
						if _, err := cl.Submit(p, txn.Partitions(), txn.Encode()); err != nil {
							return
						}
						t1 := p.Now()
						if t1 > measureEnd {
							return
						}
						if t0 >= warmupEnd {
							completed++
							lat.Add(sim.Duration(t1 - t0))
						}
					}
				})
			}
			if err := s.RunUntil(measureEnd + sim.Time(20*sim.Millisecond)); err != nil {
				return nil, err
			}

			cfg := Table1Config{
				Partitions: parts,
				Replicas:   replicas,
				Throughput: Throughput(completed, opt.Window),
				Latency:    lat.Mean(),
			}
			for g := 0; g < parts; g++ {
				tr := tracers[g]
				row := Table1Partition{PartitionID: g + 1}
				if tr.multi > 0 {
					row.DelayedPct = float64(tr.delayed) / float64(tr.multi) * 100
				}
				if tr.delayed > 0 {
					row.AverageDelay = tr.wait / sim.Duration(tr.delayed)
				}
				cfg.Rows = append(cfg.Rows, row)
			}
			res.Configs = append(res.Configs, cfg)
		}
	}
	return res, nil
}

// Format renders the table in the paper's layout.
func (r *Table1Result) Format() string {
	var b strings.Builder
	b.WriteString("Table I: transaction delay when waiting for all vs a majority of replicas\n")
	for _, cfg := range r.Configs {
		fmt.Fprintf(&b, "\n%d partitions, %d replicas per partition\n", cfg.Partitions, cfg.Replicas)
		fmt.Fprintf(&b, "  max throughput: %.0f tps, average latency: %s\n", cfg.Throughput, fmtDur(cfg.Latency))
		fmt.Fprintf(&b, "  %12s  %22s  %14s\n", "partition id", "delayed transactions", "average delay")
		for _, row := range cfg.Rows {
			fmt.Fprintf(&b, "  %12d  %21.1f%%  %14s\n", row.PartitionID, row.DelayedPct, fmtDur(row.AverageDelay))
		}
	}
	return b.String()
}
