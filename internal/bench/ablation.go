package bench

import (
	"fmt"
	"strings"

	"heron/internal/core"
	"heron/internal/obs"
	"heron/internal/sim"
	"heron/internal/tpcc"
)

// CutoffRow is one point of the cut-off delay ablation (Section V-E1:
// "How to determine the efficient cut-off time for coordination?").
type CutoffRow struct {
	Cutoff         sim.Duration
	Throughput     float64
	Latency        sim.Duration
	StateTransfers uint64
	Skipped        uint64
}

// CutoffResult is the full ablation.
type CutoffResult struct {
	SlowDelay sim.Duration
	Rows      []CutoffRow
}

// RunCutoffAblation sweeps the anti-lagger cut-off delay with one
// artificially slow replica per partition: with no cut-off the slow
// replica keeps falling behind and resorts to state transfer; a cut-off
// of a fraction of a request's execution time practically eliminates
// laggers, at a small latency cost — the design trade-off the paper's
// heuristic settles.
func RunCutoffAblation(cutoffs []sim.Duration, slow sim.Duration, window sim.Duration, o *obs.Observer) (*CutoffResult, error) {
	if len(cutoffs) == 0 {
		cutoffs = []sim.Duration{0, 2 * sim.Microsecond, 5 * sim.Microsecond, 10 * sim.Microsecond, 20 * sim.Microsecond, 50 * sim.Microsecond}
	}
	if slow <= 0 {
		slow = 6 * sim.Microsecond
	}
	if window <= 0 {
		window = 80 * sim.Millisecond
	}
	res := &CutoffResult{SlowDelay: slow}
	for i, cutoff := range cutoffs {
		s := sim.NewScheduler()
		opt := DefaultOptions(2)
		opt.Window = window
		opt.CutoffDelay = cutoff
		opt.Obs = o.Scope(fmt.Sprintf("cutoff%d", i))
		d, _, err := BuildHeron(s, opt)
		if err != nil {
			return nil, err
		}
		// One lagging replica per partition.
		for g := 0; g < 2; g++ {
			d.Replica(core.PartitionID(g), 2).SetSlow(slow)
		}

		completed := 0
		lat := &LatencyRecorder{}
		warmupEnd := sim.Time(opt.Warmup)
		measureEnd := warmupEnd + sim.Time(opt.Window)
		nClients := opt.ClientsPerPartition * 2
		for ci := 0; ci < nClients; ci++ {
			ci := ci
			cl := d.NewClient()
			w := tpcc.NewWorkload(opt.Seed+int64(ci)*7919, 2, opt.Scale)
			w.HomeWID = ci%2 + 1
			s.Spawn(fmt.Sprintf("ab-client%d", ci), func(p *sim.Proc) {
				for {
					txn := w.Next()
					t0 := p.Now()
					if _, err := cl.Submit(p, txn.Partitions(), txn.Encode()); err != nil {
						return
					}
					t1 := p.Now()
					if t1 > measureEnd {
						return
					}
					if t0 >= warmupEnd {
						completed++
						lat.Add(sim.Duration(t1 - t0))
					}
				}
			})
		}
		if err := s.RunUntil(measureEnd + sim.Time(50*sim.Millisecond)); err != nil {
			return nil, err
		}
		row := CutoffRow{
			Cutoff:     cutoff,
			Throughput: Throughput(completed, opt.Window),
			Latency:    lat.Mean(),
		}
		for g := 0; g < 2; g++ {
			for r := 0; r < 3; r++ {
				row.StateTransfers += d.Replica(core.PartitionID(g), r).StateTransfers()
				row.Skipped += d.Replica(core.PartitionID(g), r).Skipped()
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders the ablation.
func (r *CutoffResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cut-off delay ablation (one replica per partition slowed by %s)\n", fmtDur(r.SlowDelay))
	fmt.Fprintf(&b, "%10s  %12s  %10s  %15s  %10s\n", "cutoff", "tput/s", "latency", "state transfers", "skipped")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%10s  %12.0f  %10s  %15d  %10d\n",
			fmtDur(row.Cutoff), row.Throughput, fmtDur(row.Latency), row.StateTransfers, row.Skipped)
	}
	return b.String()
}
