package bench

import (
	"fmt"
	"strings"

	"heron/internal/obs"
	"heron/internal/sim"
)

// Fig4Row is one warehouse-count column of Figure 4: maximum throughput
// of the four systems/workloads.
type Fig4Row struct {
	Warehouses int
	Ramcast    float64 // ordering only
	HeronNull  float64 // ordering + coordination, null execution
	TPCC       float64 // full TPCC
	LocalTPCC  float64 // TPCC with local-only requests
}

// Fig4Result is the full figure.
type Fig4Result struct {
	Rows []Fig4Row
}

// RunFig4 regenerates Figure 4: maximum throughput of RamCast, Heron
// (null requests), TPCC, and local-only TPCC as partitions scale.
func RunFig4(warehouseCounts []int, clientsPerPartition int, window sim.Duration, o *obs.Observer) (*Fig4Result, error) {
	if len(warehouseCounts) == 0 {
		warehouseCounts = []int{1, 2, 4, 8, 16}
	}
	res := &Fig4Result{}
	for _, wh := range warehouseCounts {
		opt := DefaultOptions(wh)
		if clientsPerPartition > 0 {
			opt.ClientsPerPartition = clientsPerPartition
		}
		if window > 0 {
			opt.Window = window
		}
		row := Fig4Row{Warehouses: wh}
		scope := func(series string) *obs.Observer {
			return o.Scope(fmt.Sprintf("%dWH/%s", wh, series))
		}

		rcOpt := opt
		rcOpt.Obs = scope("ramcast")
		rc, err := RunRamcast(rcOpt)
		if err != nil {
			return nil, fmt.Errorf("fig4 ramcast %dWH: %w", wh, err)
		}
		row.Ramcast = rc.Throughput

		nullOpt := opt
		nullOpt.NullRequests = true
		nullOpt.Obs = scope("null")
		hn, err := RunHeron(nullOpt)
		if err != nil {
			return nil, fmt.Errorf("fig4 heron-null %dWH: %w", wh, err)
		}
		row.HeronNull = hn.Throughput

		tpOpt := opt
		tpOpt.Obs = scope("tpcc")
		tp, err := RunHeron(tpOpt)
		if err != nil {
			return nil, fmt.Errorf("fig4 tpcc %dWH: %w", wh, err)
		}
		row.TPCC = tp.Throughput

		localOpt := opt
		localOpt.LocalOnly = true
		localOpt.Obs = scope("local")
		lt, err := RunHeron(localOpt)
		if err != nil {
			return nil, fmt.Errorf("fig4 local-tpcc %dWH: %w", wh, err)
		}
		row.LocalTPCC = lt.Throughput

		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders the figure as the paper's bar groups, in text.
func (r *Fig4Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 4: max throughput (requests/s) vs number of warehouses\n")
	fmt.Fprintf(&b, "%4s  %12s  %12s  %12s  %12s\n", "WH", "Ramcast", "Heron(null)", "Tpcc", "Local Tpcc")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%4d  %12.0f  %12.0f  %12.0f  %12.0f\n",
			row.Warehouses, row.Ramcast, row.HeronNull, row.TPCC, row.LocalTPCC)
	}
	if len(r.Rows) > 1 {
		base := r.Rows[0]
		b.WriteString("scaling factors relative to 1WH:\n")
		for _, row := range r.Rows[1:] {
			fmt.Fprintf(&b, "%4d  %12.2fx %12.2fx %12.2fx %12.2fx\n", row.Warehouses,
				row.Ramcast/base.Ramcast, row.HeronNull/base.HeronNull,
				row.TPCC/base.TPCC, row.LocalTPCC/base.LocalTPCC)
		}
	}
	return b.String()
}
