package bench

import (
	"bytes"
	"testing"

	"heron/internal/obs"
	"heron/internal/sim"
)

// obsOpenLoop runs one small open-loop scenario on `domains` parallel
// simulation domains (real OS threads when domains > 1) with every
// sharded instrument armed, and returns the serialized critical-path
// profile, heat report, and flight trace.
func obsOpenLoop(t *testing.T, domains int) (profile, heat, flight []byte) {
	t.Helper()
	opts := smallOpenLoop()
	opts.Groups = 4
	opts.Domains = domains
	cp := obs.NewCritPath(domains)
	h := obs.NewHeat(opts.Groups, 100*sim.Microsecond, 8)
	fr := obs.NewFlightRecorder(domains, 1024)
	opts.Obs = obs.NewFull(nil, nil, cp, h, fr)
	res, err := RunOpenLoop(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("no deliveries: the instruments recorded nothing")
	}
	var pb, hb, fb bytes.Buffer
	if err := cp.Profile(5).WriteJSON(&pb); err != nil {
		t.Fatal(err)
	}
	if err := h.Report(sim.Time(res.VirtualNS)).WriteJSON(&hb); err != nil {
		t.Fatal(err)
	}
	if err := fr.WriteTrace(&fb, "determinism-test"); err != nil {
		t.Fatal(err)
	}
	return pb.Bytes(), hb.Bytes(), fb.Bytes()
}

// TestMultiDomainObsDeterminism pins the hard invariant for the sharded
// instruments under the parallel kernel: with the same seed and the same
// domain count, two runs on real OS threads serialize the critical-path
// profile, the heat report, and the flight trace to identical bytes —
// thread scheduling must never leak into the output. (1-domain and
// N-domain runs are separately deterministic but not mutually
// byte-identical: the two kernels schedule cross-group verbs differently,
// see DESIGN §11. Layout-independence of the merge itself is pinned by
// the shard-scatter tests in internal/obs.)
func TestMultiDomainObsDeterminism(t *testing.T) {
	p1, h1, f1 := obsOpenLoop(t, 4)
	p2, h2, f2 := obsOpenLoop(t, 4)
	if !bytes.Equal(p1, p2) {
		t.Fatalf("same-seed 4-domain runs produced different profiles:\n%s\nvs\n%s", p1, p2)
	}
	if !bytes.Equal(h1, h2) {
		t.Fatal("same-seed 4-domain runs produced different heat reports")
	}
	if !bytes.Equal(f1, f2) {
		t.Fatal("same-seed 4-domain runs produced different flight traces")
	}

	// The single-domain kernel must be self-deterministic too.
	p3, _, _ := obsOpenLoop(t, 1)
	p4, _, _ := obsOpenLoop(t, 1)
	if !bytes.Equal(p3, p4) {
		t.Fatal("same-seed 1-domain runs produced different profiles")
	}
}

// TestOpenLoopProfileSumsToE2E pins the attribution identity the CI
// smoke job asserts: the profile's segment sum equals its total
// end-to-end latency exactly, and the mean is consistent with the
// harness's own latency recorder.
func TestOpenLoopProfileSumsToE2E(t *testing.T) {
	opts := smallOpenLoop()
	cp := obs.NewCritPath(1)
	opts.Obs = obs.NewFull(nil, nil, cp, nil, nil)
	if _, err := RunOpenLoop(opts); err != nil {
		t.Fatal(err)
	}
	p := cp.Profile(0)
	if p.Attributed == 0 {
		t.Fatal("nothing attributed")
	}
	if p.SegmentSumNS != p.TotalE2ENS {
		t.Fatalf("segment sum %d != total e2e %d", p.SegmentSumNS, p.TotalE2ENS)
	}
}
