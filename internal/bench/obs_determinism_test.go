package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"heron/internal/obs"
)

// fig6Trace runs one small fig6 workload under a fresh observer and
// returns the serialized Chrome trace and metrics snapshot.
func fig6Trace(t *testing.T, seed int64) ([]byte, []byte) {
	t.Helper()
	tr := obs.NewTracer()
	m := obs.NewMetrics()
	o := obs.New(tr, m)
	if _, err := runFig6Workload("det", 2, 1, 12, seed, o); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := json.Marshal(m.Snapshot(0))
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), snap
}

// TestTraceDeterminism pins the observability layer's core guarantee:
// tracing in virtual time is exact, so the same seed yields a
// byte-identical trace file and metrics snapshot, while a different seed
// yields a different trace.
func TestTraceDeterminism(t *testing.T) {
	trace1, snap1 := fig6Trace(t, 7)
	trace2, snap2 := fig6Trace(t, 7)
	if !bytes.Equal(trace1, trace2) {
		t.Fatalf("same seed produced different traces (%d vs %d bytes)", len(trace1), len(trace2))
	}
	if !bytes.Equal(snap1, snap2) {
		t.Fatalf("same seed produced different metrics snapshots:\n%s\nvs\n%s", snap1, snap2)
	}
	trace3, _ := fig6Trace(t, 8)
	if bytes.Equal(trace1, trace3) {
		t.Fatal("different seeds produced identical traces")
	}

	// The trace must also be loadable: valid JSON in the trace_event
	// object format, with events on registered tracks.
	var parsed struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace1, &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	phases := map[string]int{}
	for _, ev := range parsed.TraceEvents {
		phases[ev.Ph]++
	}
	// A run must produce metadata, complete spans (request lifecycle), and
	// async spans (RDMA verbs).
	for _, ph := range []string{"M", "X", "b", "e"} {
		if phases[ph] == 0 {
			t.Fatalf("trace has no %q events; phases: %v", ph, phases)
		}
	}
}
