package bench

import (
	"math"
	"math/rand"
	"testing"

	"heron/internal/sim"
)

// Rate-shape coverage: each shape thins the peak-rate arrival process to
// a known time profile, so the accepted-arrival integral (and, for
// flash, its concentration) must match the profile's closed form within
// sampling tolerance.
//
//	steady  : frac(x) = 1                          -> integral 1
//	diurnal : frac(x) = 0.4 + 0.6*sin(pi*x)        -> integral 0.4 + 1.2/pi ~ 0.782
//	flash   : frac(x) = 0.2 except 1.0 on [0.4,.5) -> integral 0.28
//
// The pump chain runs on a bare scheduler with a draining consumer; no
// cluster is involved, so the test isolates the generator itself.

// runShape generates one pump's arrival chain for a shape and returns
// the accepted arrivals bucketed into deciles of the window.
func runShape(t *testing.T, shape string, seed int64) (deciles [10]int, total int) {
	t.Helper()
	opts := DefaultOpenLoopOptions()
	opts.Shape = shape
	opts.Warmup = 0
	opts.Window = 10 * sim.Millisecond
	opts.Clients = 1000

	s := sim.NewScheduler()
	rng := rand.New(rand.NewSource(seed))
	pu := &openPump{
		queue:   sim.NewChan[arrival](s),
		rng:     rng,
		zipf:    rand.NewZipf(rng, opts.ZipfS, 1, uint64(opts.KeySpace-1)),
		opts:    &opts,
		rate:    0.004, // peak msgs/ns: ~40k arrivals over the window
		horizon: sim.Time(opts.Window),
	}
	pu.schedule(s, pu.interarrival())
	s.At(sim.Time(opts.Window), func() { pu.queue.Close() })
	s.Spawn("shape-sink", func(p *sim.Proc) {
		for {
			a, ok := pu.queue.Recv(p)
			if !ok {
				return
			}
			idx := int(a.at * 10 / sim.Time(opts.Window))
			if idx > 9 {
				idx = 9
			}
			deciles[idx]++
			total++
		}
	})
	if err := s.RunUntil(sim.Time(opts.Window) + 1); err != nil {
		t.Fatal(err)
	}
	return deciles, total
}

// TestOpenLoopShapeIntegrals: the accepted fraction of the peak-rate
// process matches each shape's closed-form integral.
func TestOpenLoopShapeIntegrals(t *testing.T) {
	_, peak := runShape(t, "steady", 11)
	if peak < 10_000 {
		t.Fatalf("steady run too small to normalize against: %d arrivals", peak)
	}
	cases := []struct {
		shape string
		want  float64 // fraction of the steady total
		tol   float64
	}{
		{"steady", 1.0, 0.03},
		{"diurnal", 0.4 + 1.2/math.Pi, 0.05},
		{"flash", 0.2*0.9 + 1.0*0.1, 0.04},
	}
	for _, tc := range cases {
		_, total := runShape(t, tc.shape, 11)
		got := float64(total) / float64(peak)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("%s: accepted fraction %.3f, want %.3f +/- %.2f (total %d / peak %d)",
				tc.shape, got, tc.want, tc.tol, total, peak)
		}
	}
}

// TestOpenLoopFlashConcentration: the flash decile carries at least 5x
// the baseline decile rate (the profile says exactly 5x: 1.0 vs 0.2),
// and the crowd sits in the [40%, 50%) decile alone.
func TestOpenLoopFlashConcentration(t *testing.T) {
	deciles, total := runShape(t, "flash", 23)
	if total == 0 {
		t.Fatal("no arrivals accepted")
	}
	flash := deciles[4]
	baseline := 0.0
	for i, n := range deciles {
		if i != 4 {
			baseline += float64(n)
		}
	}
	baseline /= 9
	if baseline == 0 {
		t.Fatalf("empty baseline deciles: %v", deciles)
	}
	if ratio := float64(flash) / baseline; ratio < 4.2 {
		t.Errorf("flash decile only %.1fx the baseline (deciles %v)", ratio, deciles)
	}
	for i, n := range deciles {
		if i == 4 {
			continue
		}
		if float64(n) > 2*baseline {
			t.Errorf("decile %d looks like a second crowd: %d vs baseline %.0f", i, n, baseline)
		}
	}
}

// TestOpenLoopDiurnalProfile: the diurnal ramp peaks mid-window and
// sags at both edges, per the half-sine.
func TestOpenLoopDiurnalProfile(t *testing.T) {
	deciles, total := runShape(t, "diurnal", 31)
	if total == 0 {
		t.Fatal("no arrivals accepted")
	}
	mid := deciles[4] + deciles[5]
	edges := deciles[0] + deciles[9]
	// frac(mid deciles) ~ 0.99 avg vs frac(edge deciles) ~ 0.49 avg.
	if mid <= edges {
		t.Errorf("diurnal profile not peaked: mid %d vs edges %d (deciles %v)", mid, edges, deciles)
	}
	if ratio := float64(mid) / float64(edges); ratio < 1.5 || ratio > 2.7 {
		t.Errorf("mid/edge ratio %.2f outside the half-sine's [1.5, 2.7] (deciles %v)", ratio, deciles)
	}
}
