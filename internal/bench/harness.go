package bench

import (
	"fmt"
	"runtime"
	"runtime/debug"

	"heron/internal/core"
	"heron/internal/multicast"
	"heron/internal/obs"
	"heron/internal/rdma"
	"heron/internal/sim"
	"heron/internal/store"
	"heron/internal/tpcc"
)

// Options control a measurement run.
type Options struct {
	Warehouses int
	Replicas   int
	Scale      tpcc.Scale
	// ClientsPerPartition drives the closed loop; "enough to saturate"
	// per Section V-B for throughput runs, 1 for latency runs.
	ClientsPerPartition int
	Warmup              sim.Duration
	Window              sim.Duration
	Seed                int64
	// Workload shaping.
	LocalOnly       bool
	FixedPartitions int
	Mix             *tpcc.Mix
	// NullRequests replaces TPCC execution with empty requests that keep
	// the TPCC destination-set shape (Fig. 4's "Heron" series).
	NullRequests bool
	// CutoffDelay overrides the anti-lagger cut-off (negative = default).
	CutoffDelay sim.Duration
	// ExecWorkers enables the multi-threaded execution extension (>1).
	ExecWorkers int
	// Obs attaches the observability layer (span tracing + metrics) to
	// the deployment; nil leaves instrumentation on the disabled path.
	Obs *obs.Observer
}

// DefaultOptions returns throughput-run options for a warehouse count.
func DefaultOptions(warehouses int) Options {
	return Options{
		Warehouses:          warehouses,
		Replicas:            3,
		Scale:               tpcc.SmallScale(),
		ClientsPerPartition: 6,
		Warmup:              20 * sim.Millisecond,
		Window:              150 * sim.Millisecond,
		Seed:                1,
		CutoffDelay:         -1,
	}
}

// Layout builds the node layout for a deployment.
func Layout(warehouses, replicas int) [][]rdma.NodeID {
	layout := make([][]rdma.NodeID, warehouses)
	id := rdma.NodeID(1)
	for g := range layout {
		for r := 0; r < replicas; r++ {
			layout[g] = append(layout[g], id)
			id++
		}
	}
	return layout
}

// storeCapacityFor sizes the per-replica store region for a scale.
func storeCapacityFor(scale tpcc.Scale) int {
	return scale.Items*store.SlotSize(tpcc.StockMaxBytes) +
		scale.DistrictsPerWH*scale.CustomersPerDistrict*store.SlotSize(tpcc.CustomerMaxBytes) +
		1<<16
}

// HeronRun is the outcome of one Heron measurement.
type HeronRun struct {
	Completed  int
	Throughput float64 // requests per second in the window
	Latency    *LatencyRecorder
	// LatencyByKind and latency split by request shape.
	LatencyByKind  map[tpcc.TxnKind]*LatencyRecorder
	LatencySingle  *LatencyRecorder
	LatencyMulti   *LatencyRecorder
	Deployment     *core.Deployment
	StateTransfers uint64
}

// nullApp executes empty requests (no reads, no writes, no CPU), keeping
// only Heron's ordering + coordination path — Fig. 4's "Heron" series.
type nullApp struct{}

func (nullApp) ReadSet(req *core.Request) []store.OID { return nil }
func (nullApp) Execute(ctx *core.ExecContext) core.Outcome {
	return core.Outcome{Response: []byte{1}}
}

// BuildHeron constructs a started Heron deployment per the options.
func BuildHeron(s *sim.Scheduler, opt Options) (*core.Deployment, *tpcc.Dataset, error) {
	layout := Layout(opt.Warehouses, opt.Replicas)
	ds := tpcc.NewDataset(opt.Seed, opt.Warehouses, opt.Scale)
	cfg := core.DefaultConfig(multicast.DefaultConfig(layout))
	cfg.StoreCapacity = storeCapacityFor(opt.Scale)
	if opt.NullRequests {
		cfg.StoreCapacity = 1 << 16
	}
	if opt.CutoffDelay >= 0 {
		cfg.CutoffDelay = opt.CutoffDelay
	}
	cfg.ExecWorkers = opt.ExecWorkers
	var factory core.AppFactory
	if opt.NullRequests {
		factory = func(part core.PartitionID, rank int) core.Application { return nullApp{} }
	} else {
		factory = tpcc.NewAppFactory(ds, tpcc.DefaultCostModel())
	}
	d, err := core.NewDeployment(s, cfg, factory, tpcc.Partitioner)
	if err != nil {
		return nil, nil, err
	}
	if !opt.NullRequests {
		err = d.PopulateAll(func(part core.PartitionID, rank int, rep *core.Replica) error {
			return rep.App().(*tpcc.App).Populate(rep.Store())
		})
		if err != nil {
			return nil, nil, err
		}
	}
	d.Observe(opt.Obs)
	d.Start()
	return d, ds, nil
}

// RunHeron measures Heron under the configured TPCC workload: closed-loop
// clients, a warmup, then a measurement window.
func RunHeron(opt Options) (*HeronRun, error) {
	s := sim.NewScheduler()
	d, _, err := BuildHeron(s, opt)
	if err != nil {
		return nil, err
	}
	run := &HeronRun{
		Latency:       &LatencyRecorder{},
		LatencyByKind: make(map[tpcc.TxnKind]*LatencyRecorder),
		LatencySingle: &LatencyRecorder{},
		LatencyMulti:  &LatencyRecorder{},
		Deployment:    d,
	}
	warmupEnd := sim.Time(opt.Warmup)
	measureEnd := warmupEnd + sim.Time(opt.Window)

	nClients := opt.ClientsPerPartition * opt.Warehouses
	for ci := 0; ci < nClients; ci++ {
		ci := ci
		cl := d.NewClient()
		w := tpcc.NewWorkload(opt.Seed+int64(ci)*7919, opt.Warehouses, opt.Scale)
		w.LocalOnly = opt.LocalOnly
		w.FixedPartitions = opt.FixedPartitions
		w.Mix = opt.Mix
		w.HomeWID = ci%opt.Warehouses + 1
		s.Spawn(fmt.Sprintf("bench-client%d", ci), func(p *sim.Proc) {
			for {
				txn := w.Next()
				parts := txn.Partitions()
				t0 := p.Now()
				if _, err := cl.Submit(p, parts, txn.Encode()); err != nil {
					return
				}
				t1 := p.Now()
				if t1 > measureEnd {
					return
				}
				if t0 >= warmupEnd {
					lat := sim.Duration(t1 - t0)
					run.Completed++
					run.Latency.Add(lat)
					rec := run.LatencyByKind[txn.Kind]
					if rec == nil {
						rec = &LatencyRecorder{}
						run.LatencyByKind[txn.Kind] = rec
					}
					rec.Add(lat)
					if len(parts) > 1 {
						run.LatencyMulti.Add(lat)
					} else {
						run.LatencySingle.Add(lat)
					}
				}
			}
		})
	}
	if err := s.RunUntil(measureEnd + sim.Time(20*sim.Millisecond)); err != nil {
		return nil, err
	}
	run.Throughput = Throughput(run.Completed, opt.Window)
	for g := 0; g < d.Partitions(); g++ {
		for r := 0; r < opt.Replicas; r++ {
			run.StateTransfers += d.Replica(core.PartitionID(g), r).StateTransfers()
		}
	}
	releaseMemory()
	return run, nil
}

// releaseMemory returns freed heap to the OS between measurement runs;
// back-to-back deployments otherwise accumulate MADV_FREE'd pages that
// the OOM killer still counts.
func releaseMemory() {
	runtime.GC()
	debug.FreeOSMemory()
}

// runUntilDone advances virtual time in slices until the flag is set or
// the virtual deadline passes — long-lived background processes
// (heartbeats, control loops) would otherwise keep the event queue busy
// long after the measurement finished.
func runUntilDone(s *sim.Scheduler, done *bool, max sim.Duration) error {
	deadline := s.Now() + sim.Time(max)
	for !*done && s.Now() < deadline {
		if err := s.RunUntil(s.Now() + sim.Time(5*sim.Millisecond)); err != nil {
			return err
		}
	}
	if !*done {
		return fmt.Errorf("bench: run did not complete within %v of virtual time", max)
	}
	return nil
}
