package bench

import (
	"fmt"
	"strings"

	"heron/internal/core"
	"heron/internal/multicast"
	"heron/internal/obs"
	"heron/internal/sim"
	"heron/internal/tpcc"
)

// Fig6Row is the latency breakdown of one workload with a single client.
type Fig6Row struct {
	Workload     string
	Ordering     sim.Duration // submission -> atomic multicast delivery
	Coordination sim.Duration // phase 2 + phase 4 waits
	Execution    sim.Duration
	Total        sim.Duration // client-observed
	Requests     int
	CDF          []CDFPoint
}

// Fig6Result is the full figure.
type Fig6Result struct {
	Rows []Fig6Row
}

// traceSink collects trace records keyed by request id, for one replica.
type traceSink struct {
	recs map[multicast.MsgID]core.TraceRecord
}

func (t *traceSink) RequestDone(part core.PartitionID, rank int, id multicast.MsgID, rec core.TraceRecord) {
	t.recs[id] = rec
}

// runFig6Workload measures one single-client workload and splits latency
// into the paper's three stages using the home-partition rank-0 trace.
// Each workload's spans and metrics land under their own observer scope,
// so the five runs share one trace file without colliding.
func runFig6Workload(name string, warehouses, fixedParts, requests int, seed int64, o *obs.Observer) (Fig6Row, error) {
	s := sim.NewScheduler()
	opt := DefaultOptions(warehouses)
	opt.Seed = seed
	opt.Obs = o.Scope(name)
	d, _, err := BuildHeron(s, opt)
	if err != nil {
		return Fig6Row{}, err
	}
	// Trace on rank 0 of every partition.
	sinks := make([]*traceSink, warehouses)
	for g := 0; g < warehouses; g++ {
		sinks[g] = &traceSink{recs: make(map[multicast.MsgID]core.TraceRecord)}
		d.Replica(core.PartitionID(g), 0).SetTracer(sinks[g])
	}

	cl := d.NewClient()
	w := tpcc.NewWorkload(opt.Seed, warehouses, opt.Scale)
	w.FixedPartitions = fixedParts
	if fixedParts == 0 {
		// The paper's bottom bar: one client submitting New-Order
		// requests in a closed loop.
		w.Mix = &tpcc.Mix{NewOrder: 100}
	}

	row := Fig6Row{Workload: name}
	lat := &LatencyRecorder{}
	type sample struct {
		id     multicast.MsgID
		submit sim.Time
		total  sim.Duration
		home   core.PartitionID
	}
	var samples []sample
	done := false
	s.Spawn("fig6-client", func(p *sim.Proc) {
		defer func() { done = true }()
		for i := 0; i < requests; i++ {
			txn := w.Next()
			parts := txn.Partitions()
			home := tpcc.PartitionOfWarehouse(int(txn.WID))
			t0 := p.Now()
			if _, err := cl.Submit(p, parts, txn.Encode()); err != nil {
				return
			}
			total := sim.Duration(p.Now() - t0)
			lat.Add(total)
			// The breakdown is traced at the home partition's replica, as
			// in the paper: it executes the full transaction.
			samples = append(samples, sample{id: cl.LastMsgID(), submit: t0, total: total, home: home})
		}
	})
	if err := runUntilDone(s, &done, 20*sim.Second); err != nil {
		return Fig6Row{}, err
	}

	var ordering, coord, exec sim.Duration
	n := 0
	for _, sm := range samples {
		rec, ok := sinks[sm.home].recs[sm.id]
		if !ok {
			continue
		}
		ordering += sim.Duration(rec.Delivered - sm.submit)
		coord += rec.CoordPhase2 + rec.CoordPhase4
		exec += rec.Exec
		n++
	}
	if n > 0 {
		row.Ordering = ordering / sim.Duration(n)
		row.Coordination = coord / sim.Duration(n)
		row.Execution = exec / sim.Duration(n)
	}
	row.Total = lat.Mean()
	row.Requests = lat.Count()
	row.CDF = lat.CDF(100)
	return row, nil
}

// RunFig6 regenerates Figure 6: the latency breakdown with one client for
// the TPCC mix plus fixed 1-4 partition New-Order workloads, and the
// latency CDFs.
func RunFig6(requests int, o *obs.Observer) (*Fig6Result, error) {
	if requests <= 0 {
		requests = 400
	}
	res := &Fig6Result{}
	row, err := runFig6Workload("Tpcc", 4, 0, requests, 1, o)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row)
	for k := 1; k <= 4; k++ {
		warehouses := 4
		row, err := runFig6Workload(fmt.Sprintf("%dWH", k), warehouses, k, requests, 1, o)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// RunFig6CritPath runs one fig6 workload with the causal critical-path
// engine armed and returns its deterministic latency-attribution profile
// (heron-trace critpath's backend). workload selects the fixed partition
// count: "1WH".."4WH", or "tpcc" for the mixed workload. The profile's
// segment sum equals the total end-to-end latency by construction; the
// harness CI job asserts they agree within 1%.
func RunFig6CritPath(workload string, requests, slowestN int, o *obs.Observer) (*obs.CPProfile, error) {
	if requests <= 0 {
		requests = 400
	}
	if slowestN < 0 {
		slowestN = 0
	}
	cp := obs.NewCritPath(1)
	o = obs.NewFull(o.Tracer(), o.Metrics(), cp, o.Heat(), o.Flight())
	var fixed int
	switch strings.ToLower(workload) {
	case "tpcc":
		fixed = 0
	case "1wh", "2wh", "3wh", "4wh":
		fixed = int(workload[0] - '0')
	default:
		return nil, fmt.Errorf("fig6: unknown workload %q (want tpcc or 1WH..4WH)", workload)
	}
	if _, err := runFig6Workload(workload, 4, fixed, requests, 1, o); err != nil {
		return nil, err
	}
	return cp.Profile(slowestN), nil
}

// Format renders the breakdown and CDF summaries.
func (r *Fig6Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 6: latency breakdown with 1 client (averages)\n")
	fmt.Fprintf(&b, "%-6s  %10s  %12s  %10s  %10s  %6s\n",
		"wl", "ordering", "coordination", "execution", "total", "n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-6s  %10s  %12s  %10s  %10s  %6d\n",
			row.Workload, fmtDur(row.Ordering), fmtDur(row.Coordination),
			fmtDur(row.Execution), fmtDur(row.Total), row.Requests)
	}
	b.WriteString("\nlatency CDF percentiles (p50 / p82 / p90 / p99):\n")
	for _, row := range r.Rows {
		p := func(f float64) sim.Duration {
			idx := int(f*float64(len(row.CDF))) - 1
			if idx < 0 {
				idx = 0
			}
			if idx >= len(row.CDF) {
				idx = len(row.CDF) - 1
			}
			return row.CDF[idx].Latency
		}
		fmt.Fprintf(&b, "%-6s  %10s  %10s  %10s  %10s\n", row.Workload,
			fmtDur(p(0.50)), fmtDur(p(0.82)), fmtDur(p(0.90)), fmtDur(p(0.99)))
	}
	return b.String()
}
