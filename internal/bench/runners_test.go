package bench

import (
	"testing"

	"heron/internal/sim"
)

// These tests run each experiment at reduced size and assert the SHAPE
// results the paper reports — who wins, what grows, what stays flat —
// rather than absolute numbers (see EXPERIMENTS.md for the full-size
// paper-vs-measured comparison).

func TestFig4Shape(t *testing.T) {
	res, err := RunFig4([]int{1, 2}, 4, 40*sim.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		// Layering: ordering alone > ordering+coordination > full TPCC.
		if !(row.Ramcast > row.HeronNull && row.HeronNull > row.TPCC) {
			t.Fatalf("%dWH: expected Ramcast > Heron(null) > TPCC, got %+v", row.Warehouses, row)
		}
		if row.LocalTPCC < row.TPCC {
			t.Fatalf("%dWH: local-only TPCC slower than standard mix: %+v", row.Warehouses, row)
		}
	}
	// Local TPCC scales nearly linearly from 1 to 2 partitions.
	r1, r2 := res.Rows[0], res.Rows[1]
	if ratio := r2.LocalTPCC / r1.LocalTPCC; ratio < 1.6 {
		t.Fatalf("local TPCC 2WH/1WH scaling = %.2f, want near-linear", ratio)
	}
}

func TestFig5Shape(t *testing.T) {
	res, err := RunFig5([]int{2}, 50*sim.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	// The paper's headline: more than an order of magnitude.
	if row.TputRatio < 5 {
		t.Fatalf("Heron/DynaStar throughput ratio = %.1f, want >> 1", row.TputRatio)
	}
	if row.LatencyRatio < 5 {
		t.Fatalf("DynaStar/Heron latency ratio = %.1f, want >> 1", row.LatencyRatio)
	}
	if row.DynaStarLatency < 500*sim.Microsecond {
		t.Fatalf("DynaStar latency %v implausibly low for message passing", row.DynaStarLatency)
	}
}

func TestFig6Shape(t *testing.T) {
	res, err := RunFig6(40, nil)
	if err != nil {
		t.Fatal(err)
	}
	tpccRow := res.Rows[0]
	// Coordination is the smallest stage (paper: ~2us of 35.4us).
	if tpccRow.Coordination > tpccRow.Execution || tpccRow.Coordination > tpccRow.Ordering {
		t.Fatalf("coordination should be the cheapest stage: %+v", tpccRow)
	}
	// Totals grow with the number of fixed partitions (1WH..4WH rows).
	for i := 2; i < len(res.Rows); i++ {
		if res.Rows[i].Total < res.Rows[i-1].Total {
			t.Fatalf("latency should grow with partitions touched: %s=%v < %s=%v",
				res.Rows[i].Workload, res.Rows[i].Total, res.Rows[i-1].Workload, res.Rows[i-1].Total)
		}
	}
	// Single-partition latency stays in the tens of microseconds.
	if res.Rows[1].Total > 100*sim.Microsecond {
		t.Fatalf("1WH total %v not microsecond-scale", res.Rows[1].Total)
	}
}

func TestFig7Shape(t *testing.T) {
	res, err := RunFig7(4, 60, nil)
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[string]Fig7Row{}
	for _, row := range res.Rows {
		byKind[row.Kind.String()] = row
	}
	no := byKind["NewOrder"]
	if no.MultiCount == 0 {
		t.Fatal("no multi-partition New-Orders observed")
	}
	if no.MultiLatency < no.SingleLatency {
		t.Fatalf("multi-partition New-Order (%v) should exceed single (%v)", no.MultiLatency, no.SingleLatency)
	}
	// Stock-Level is the expensive local transaction (paper, Fig. 7).
	sl := byKind["StockLevel"]
	os := byKind["OrderStatus"]
	if sl.SingleLatency < 2*os.SingleLatency {
		t.Fatalf("StockLevel (%v) should dwarf OrderStatus (%v)", sl.SingleLatency, os.SingleLatency)
	}
}

func TestFig8Shape(t *testing.T) {
	res, err := RunFig8(1, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]Fig8Row{}
	for _, row := range res.Rows {
		rows[row.Label] = row
	}
	// Protocol-only is a handful of microseconds (two one-sided writes).
	if p := rows["Protocol"].Latency; p > 20*sim.Microsecond || p <= 0 {
		t.Fatalf("protocol-only latency %v", p)
	}
	// Latency grows with size, roughly x10 per decade.
	if !(rows["64KB serialized"].Latency < rows["640KB serialized"].Latency &&
		rows["640KB serialized"].Latency < rows["6.4MB serialized"].Latency) {
		t.Fatal("serialized transfer latency not monotone in size")
	}
	// (De)serialization degrades non-serialized transfers considerably.
	for _, size := range []string{"64KB", "640KB", "6.4MB"} {
		ser := rows[size+" serialized"].Latency
		non := rows[size+" non-serialized"].Latency
		if non < 2*ser {
			t.Fatalf("%s: non-serialized (%v) should cost >> serialized (%v)", size, non, ser)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	res, err := RunTable1(20*sim.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Configs) != 4 {
		t.Fatalf("want 4 configurations, got %d", len(res.Configs))
	}
	for _, cfg := range res.Configs {
		if cfg.Throughput <= 0 {
			t.Fatalf("%d partitions / %d replicas: no throughput", cfg.Partitions, cfg.Replicas)
		}
		for _, row := range cfg.Rows {
			// The key claim: the wait-for-all delay is a small fraction
			// of transaction latency.
			if row.AverageDelay > cfg.Latency/4 {
				t.Fatalf("average delay %v not small vs latency %v", row.AverageDelay, cfg.Latency)
			}
		}
	}
	// More partitions scale throughput.
	if res.Configs[2].Throughput < res.Configs[0].Throughput {
		t.Fatal("4 partitions slower than 2")
	}
}

func TestCutoffAblationShape(t *testing.T) {
	res, err := RunCutoffAblation([]sim.Duration{0, 50 * sim.Microsecond}, 6*sim.Microsecond, 30*sim.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	noCutoff, bigCutoff := res.Rows[0], res.Rows[1]
	// Without the heuristic the slow replicas keep lagging into state
	// transfer; a sufficient cut-off practically eliminates laggers
	// (Section V-E1).
	if noCutoff.StateTransfers == 0 {
		t.Fatal("expected laggers with no cut-off and slow replicas")
	}
	if bigCutoff.StateTransfers >= noCutoff.StateTransfers {
		t.Fatalf("cut-off did not reduce state transfers: %d -> %d",
			noCutoff.StateTransfers, bigCutoff.StateTransfers)
	}
}

func TestStatsRecorder(t *testing.T) {
	r := &LatencyRecorder{}
	for i := 1; i <= 100; i++ {
		r.Add(sim.Duration(i) * sim.Microsecond)
	}
	if got := r.Mean(); got != 50500*sim.Nanosecond {
		t.Fatalf("mean = %v", got)
	}
	if got := r.Percentile(50); got != 50*sim.Microsecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := r.Percentile(99); got != 99*sim.Microsecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := r.Max(); got != 100*sim.Microsecond {
		t.Fatalf("max = %v", got)
	}
	cdf := r.CDF(10)
	if len(cdf) != 10 || cdf[9].Fraction != 1.0 || cdf[9].Latency != 100*sim.Microsecond {
		t.Fatalf("cdf = %+v", cdf)
	}
	if r.Stddev() <= 0 {
		t.Fatal("stddev should be positive")
	}
	if Throughput(100, 10*sim.Millisecond) != 10000 {
		t.Fatalf("throughput = %f", Throughput(100, 10*sim.Millisecond))
	}
}

func TestFanoutShape(t *testing.T) {
	res, err := RunFanout([]int{1, 4, 16}, 4, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	r1, r4, r16 := res.Rows[0], res.Rows[1], res.Rows[2]
	// One object: posting overhead aside, sync and pipelined coincide.
	if ratio := float64(r1.Sync) / float64(r1.Pipelined); ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("k=1 sync/pipelined = %.2f, want ~1", ratio)
	}
	// Sync scales linearly with the read-set size.
	if ratio := float64(r16.Sync) / float64(r1.Sync); ratio < 12 {
		t.Fatalf("sync 16/1 scaling = %.1f, want ~16 (linear)", ratio)
	}
	// Pipelined scales near-flat: max of the READ latencies plus per-verb
	// posting/occupancy overhead, nowhere near 16x.
	if ratio := float64(r16.Pipelined) / float64(r1.Pipelined); ratio > 4 {
		t.Fatalf("pipelined 16/1 scaling = %.1f, want near-flat", ratio)
	}
	if r16.Speedup < 4 {
		t.Fatalf("k=16 speedup = %.1fx, want >= 4x", r16.Speedup)
	}
	if r4.Pipelined <= r1.Pipelined {
		t.Fatalf("pipelined latency must still grow with occupancy: k=4 %v <= k=1 %v", r4.Pipelined, r1.Pipelined)
	}
}

// TestFanoutDeterministic: same parameters, identical latencies.
func TestFanoutDeterministic(t *testing.T) {
	a, err := RunFanout([]int{8}, 4, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFanout([]int{8}, 4, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows[0] != b.Rows[0] {
		t.Fatalf("fanout not deterministic: %+v vs %+v", a.Rows[0], b.Rows[0])
	}
}
