package bench

import (
	"fmt"
	"strings"

	"heron/internal/obs"
	"heron/internal/sim"
	"heron/internal/tpcc"
)

// Fig7Row is the latency of one TPCC transaction type with one client.
type Fig7Row struct {
	Kind          tpcc.TxnKind
	SingleLatency sim.Duration // single-partition instances
	MultiLatency  sim.Duration // multi-partition instances (0 if none)
	SingleCount   int
	MultiCount    int
	CDF           []CDFPoint
}

// Fig7Result is the full figure.
type Fig7Result struct {
	Rows []Fig7Row
}

// RunFig7 regenerates Figure 7: the average latency of each TPCC
// transaction type, split into single- and multi-partition instances,
// with one closed-loop client per run.
func RunFig7(warehouses, requests int, o *obs.Observer) (*Fig7Result, error) {
	if warehouses <= 0 {
		warehouses = 4
	}
	if requests <= 0 {
		requests = 400
	}
	kinds := []tpcc.TxnKind{tpcc.TxnNewOrder, tpcc.TxnPayment, tpcc.TxnOrderStatus, tpcc.TxnDelivery, tpcc.TxnStockLevel}
	res := &Fig7Result{}
	for _, kind := range kinds {
		mix := &tpcc.Mix{}
		switch kind {
		case tpcc.TxnNewOrder:
			mix.NewOrder = 100
		case tpcc.TxnPayment:
			mix.Payment = 100
		case tpcc.TxnOrderStatus:
			mix.OrderStatus = 100
		case tpcc.TxnDelivery:
			mix.Delivery = 100
		case tpcc.TxnStockLevel:
			mix.StockLevel = 100
		}
		opt := DefaultOptions(warehouses)
		opt.ClientsPerPartition = 0 // single client total
		opt.Mix = mix
		opt.Obs = o.Scope(fmt.Sprint(kind))

		s := sim.NewScheduler()
		d, _, err := BuildHeron(s, opt)
		if err != nil {
			return nil, err
		}
		cl := d.NewClient()
		w := tpcc.NewWorkload(opt.Seed, warehouses, opt.Scale)
		w.Mix = mix

		row := Fig7Row{Kind: kind}
		single := &LatencyRecorder{}
		multi := &LatencyRecorder{}
		all := &LatencyRecorder{}
		done := false
		s.Spawn("fig7-client", func(p *sim.Proc) {
			defer func() { done = true }()
			for i := 0; i < requests; i++ {
				txn := w.Next()
				parts := txn.Partitions()
				t0 := p.Now()
				if _, err := cl.Submit(p, parts, txn.Encode()); err != nil {
					return
				}
				lat := sim.Duration(p.Now() - t0)
				all.Add(lat)
				if len(parts) > 1 {
					multi.Add(lat)
				} else {
					single.Add(lat)
				}
			}
		})
		if err := runUntilDone(s, &done, 30*sim.Second); err != nil {
			return nil, err
		}
		row.SingleLatency = single.Mean()
		row.MultiLatency = multi.Mean()
		row.SingleCount = single.Count()
		row.MultiCount = multi.Count()
		row.CDF = all.CDF(100)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders the per-type latencies.
func (r *Fig7Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 7: latency of TPCC transaction types (1 client)\n")
	fmt.Fprintf(&b, "%-12s  %16s  %16s\n", "type", "single-partition", "multi-partition")
	for _, row := range r.Rows {
		multi := "-"
		if row.MultiCount > 0 {
			multi = fmt.Sprintf("%s (n=%d)", fmtDur(row.MultiLatency), row.MultiCount)
		}
		fmt.Fprintf(&b, "%-12s  %16s  %16s\n", row.Kind,
			fmt.Sprintf("%s (n=%d)", fmtDur(row.SingleLatency), row.SingleCount), multi)
	}
	return b.String()
}
