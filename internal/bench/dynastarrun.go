package bench

import (
	"fmt"

	"heron/internal/core"
	"heron/internal/dynastar"
	"heron/internal/multicast"
	"heron/internal/sim"
	"heron/internal/tpcc"
)

// RunDynaStar measures the message-passing baseline under TPCC.
func RunDynaStar(opt Options) (*HeronRun, error) {
	s := sim.NewScheduler()
	layout := Layout(opt.Warehouses, opt.Replicas)
	ds := tpcc.NewDataset(opt.Seed, opt.Warehouses, opt.Scale)
	cfg := dynastar.DefaultConfig(multicast.DefaultConfig(layout), 99999)
	newApp := func(part core.PartitionID, rank int) core.Application {
		app := tpcc.NewApp(part, ds, tpcc.DefaultCostModel())
		app.SetSingleExecutor(true)
		return app
	}
	d, err := dynastar.NewDeployment(s, cfg, newApp, tpcc.Router{})
	if err != nil {
		return nil, err
	}
	for g := range d.Replicas {
		for _, rep := range d.Replicas[g] {
			app := rep.App().(*tpcc.App)
			for _, obj := range app.InitialObjects() {
				rep.LoadObject(obj.OID, obj.Val)
			}
			app.PopulateAux()
		}
	}
	d.Start()

	run := &HeronRun{
		Latency:       &LatencyRecorder{},
		LatencyByKind: make(map[tpcc.TxnKind]*LatencyRecorder),
		LatencySingle: &LatencyRecorder{},
		LatencyMulti:  &LatencyRecorder{},
	}
	warmupEnd := sim.Time(opt.Warmup)
	measureEnd := warmupEnd + sim.Time(opt.Window)

	nClients := opt.ClientsPerPartition * opt.Warehouses
	for ci := 0; ci < nClients; ci++ {
		ci := ci
		cl := d.NewClient()
		w := tpcc.NewWorkload(opt.Seed+int64(ci)*7919, opt.Warehouses, opt.Scale)
		w.LocalOnly = opt.LocalOnly
		w.Mix = opt.Mix
		w.HomeWID = ci%opt.Warehouses + 1
		s.Spawn(fmt.Sprintf("dyn-client%d", ci), func(p *sim.Proc) {
			for {
				txn := w.Next()
				t0 := p.Now()
				if _, err := cl.Submit(p, txn.Encode()); err != nil {
					return
				}
				t1 := p.Now()
				if t1 > measureEnd {
					return
				}
				if t0 >= warmupEnd {
					lat := sim.Duration(t1 - t0)
					run.Completed++
					run.Latency.Add(lat)
					if len(txn.Partitions()) > 1 {
						run.LatencyMulti.Add(lat)
					} else {
						run.LatencySingle.Add(lat)
					}
				}
			}
		})
	}
	if err := s.RunUntil(measureEnd + sim.Time(50*sim.Millisecond)); err != nil {
		return nil, err
	}
	run.Throughput = Throughput(run.Completed, opt.Window)
	releaseMemory()
	return run, nil
}
