package bench

import (
	"fmt"
	"strings"

	"heron/internal/chaos"
	"heron/internal/lsm"
	"heron/internal/obs"
	"heron/internal/persist"
	"heron/internal/sim"
	"heron/internal/store"
)

// LSM benchmark: the flat full-store snapshot engine (PR 5) against the
// log-structured engine, on the same seeded durable crash→recover
// schedules, across store sizes. Two axes decide the matchup: write
// amplification (physical write volume over logically-dirty volume —
// flat rewrites the whole store every interval, the LSM flushes only
// the dirty set and pays a bounded compaction rewrite) and recovery
// cost (flat reads one uncompressed snapshot, the LSM reads its
// compressed run set). A deterministic read-path microbench drives the
// tree directly over the NVMe cost model: cold gets, cached re-gets,
// and absent-key probes that the bloom filters must screen.

// lsmKeys are the per-partition store sizes swept; the gate is judged
// at the largest, where the engines diverge most.
var lsmKeys = []int{16, 64, 256}

// DefaultLSMValBytes pads workload values so the durable footprint is
// dominated by data, not slot headers.
const DefaultLSMValBytes = 256

// LSMBenchOptions configure one sweep.
type LSMBenchOptions struct {
	Seed     int64
	Keys     []int  // per-partition store sizes (default lsmKeys)
	ValBytes int    // value padding (default DefaultLSMValBytes)
	Preset   string // LSM compression preset (default snappy-class)
	Obs      *obs.Observer
}

// DefaultLSMBenchOptions sizes the sweep to finish in seconds.
func DefaultLSMBenchOptions(seed int64) LSMBenchOptions {
	return LSMBenchOptions{Seed: seed, Keys: lsmKeys, ValBytes: DefaultLSMValBytes}
}

// LSMRow compares the two engines on one (seed, store size) pair.
type LSMRow struct {
	Seed     int64 `json:"seed"`
	Keys     int   `json:"keys"`
	ValBytes int   `json:"val_bytes"`

	FlatDirtyBytes   uint64  `json:"flat_dirty_bytes"`
	FlatWrittenBytes uint64  `json:"flat_written_bytes"`
	FlatWriteAmp     float64 `json:"flat_write_amp"`
	LSMDirtyBytes    uint64  `json:"lsm_dirty_bytes"`
	LSMWrittenBytes  uint64  `json:"lsm_written_bytes"`
	LSMWriteAmp      float64 `json:"lsm_write_amp"`

	FlatRecoveryNS int64 `json:"flat_recovery_ns"`
	LSMRecoveryNS  int64 `json:"lsm_recovery_ns"`

	Compactions      uint64 `json:"lsm_compactions"`
	FlushFaults      uint64 `json:"flush_faults"`
	CompactionFaults uint64 `json:"compaction_faults"`

	CkptRecoveries   uint64 `json:"checkpoint_recoveries"`
	FlatLinearizable bool   `json:"flat_linearizable"`
	LSMLinearizable  bool   `json:"lsm_linearizable"`
}

// LSMReadBench is the tree-level read microbench: a compacted tree over
// the NVMe cost model, probed with cold reads, hot re-reads, and absent
// keys.
type LSMReadBench struct {
	Keys    int `json:"keys"`
	Lookups int `json:"lookups"`
	Absent  int `json:"absent_lookups"`

	PresentNS int64 `json:"present_ns"` // both get waves
	AbsentNS  int64 `json:"absent_ns"`

	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	BloomNegatives uint64  `json:"bloom_negatives"`
}

// LSMResult is the full sweep plus the read microbench. Everything
// derives from virtual state: same flags, byte-identical JSON.
type LSMResult struct {
	Preset string        `json:"preset"`
	Rows   []*LSMRow     `json:"rows"`
	Read   *LSMReadBench `json:"read_bench"`
}

// Gate is the CI acceptance check: at the largest store size the LSM
// engine must beat flat on both write amplification and recovery time
// (both runs linearizable, recoveries actually via checkpoints), and
// the read microbench must show the bloom filters screening absent
// keys and the cache absorbing re-reads.
func (r *LSMResult) Gate() bool {
	if len(r.Rows) == 0 || r.Read == nil {
		return false
	}
	last := r.Rows[len(r.Rows)-1]
	if !last.FlatLinearizable || !last.LSMLinearizable || last.CkptRecoveries == 0 {
		return false
	}
	if last.LSMWriteAmp >= last.FlatWriteAmp {
		return false
	}
	if last.LSMRecoveryNS >= last.FlatRecoveryNS {
		return false
	}
	// Bloom filters must screen the great majority of absent probes
	// (default 10 bits/key targets ~1% FPR), and re-reads must hit.
	if r.Read.BloomNegatives < uint64(r.Read.Absent*9/10) {
		return false
	}
	return r.Read.CacheHits > 0 && r.Read.CacheHitRate > 0.3
}

// Format renders the sweep as tables.
func (r *LSMResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine comparison (preset=%s)\n", r.Preset)
	fmt.Fprintf(&b, "%-6s %-6s %12s %12s %9s %9s %12s %12s %6s %6s\n",
		"seed", "keys", "flat-wr", "lsm-wr", "flat-amp", "lsm-amp", "flat-rec-us", "lsm-rec-us", "comps", "faults")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-6d %-6d %12d %12d %9.2f %9.2f %12.1f %12.1f %6d %d/%d\n",
			row.Seed, row.Keys, row.FlatWrittenBytes, row.LSMWrittenBytes,
			row.FlatWriteAmp, row.LSMWriteAmp,
			float64(row.FlatRecoveryNS)/1e3, float64(row.LSMRecoveryNS)/1e3,
			row.Compactions, row.FlushFaults, row.CompactionFaults)
	}
	if r.Read != nil {
		fmt.Fprintf(&b, "\nread path (%d keys, %d lookups + %d absent)\n",
			r.Read.Keys, r.Read.Lookups, r.Read.Absent)
		fmt.Fprintf(&b, "present %.1fus  absent %.1fus  cache %d/%d (%.0f%%)  bloom-negative %d\n",
			float64(r.Read.PresentNS)/1e3, float64(r.Read.AbsentNS)/1e3,
			r.Read.CacheHits, r.Read.CacheHits+r.Read.CacheMisses,
			100*r.Read.CacheHitRate, r.Read.BloomNegatives)
	}
	return b.String()
}

// runLSMOnce runs one durable schedule with the selected engine.
func runLSMOnce(o LSMBenchOptions, keys int, engine persist.Engine) (*chaos.Report, error) {
	opt := chaos.DefaultOptions()
	opt.Keys = keys
	opt.ValBytes = o.ValBytes
	sc, err := chaos.Generate("durable", o.Seed, opt.Partitions, opt.Replicas)
	if err != nil {
		return nil, err
	}
	opt.Schedule = sc
	opt.Obs = o.Obs
	opt.Persist = &persist.Options{Engine: engine, LSM: lsm.Config{Preset: o.Preset}}
	rep, err := chaos.Run(opt)
	if err != nil {
		return nil, err
	}
	if rep.Err != "" {
		return nil, fmt.Errorf("seed %d keys %d engine %s: %s", o.Seed, keys, engine, rep.Err)
	}
	return rep, nil
}

// writeAmp guards the division (a schedule with zero dirty bytes would
// be a broken workload; surface it as +Inf-free zero).
func writeAmp(written, dirty uint64) float64 {
	if dirty == 0 {
		return 0
	}
	return float64(written) / float64(dirty)
}

// RunLSMBench sweeps both engines across store sizes and runs the read
// microbench.
func RunLSMBench(o LSMBenchOptions) (*LSMResult, error) {
	if len(o.Keys) == 0 {
		o.Keys = lsmKeys
	}
	if o.ValBytes == 0 {
		o.ValBytes = DefaultLSMValBytes
	}
	codec, err := lsm.CodecFor(o.Preset)
	if err != nil {
		return nil, err
	}
	res := &LSMResult{Preset: codec.Name}
	for _, keys := range o.Keys {
		flat, err := runLSMOnce(o, keys, persist.EngineFlat)
		if err != nil {
			return nil, err
		}
		lsmRep, err := runLSMOnce(o, keys, persist.EngineLSM)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, &LSMRow{
			Seed:     o.Seed,
			Keys:     keys,
			ValBytes: o.ValBytes,

			FlatDirtyBytes:   flat.DirtyBytes,
			FlatWrittenBytes: flat.WrittenBytes,
			FlatWriteAmp:     writeAmp(flat.WrittenBytes, flat.DirtyBytes),
			LSMDirtyBytes:    lsmRep.DirtyBytes,
			LSMWrittenBytes:  lsmRep.WrittenBytes,
			LSMWriteAmp:      writeAmp(lsmRep.WrittenBytes, lsmRep.DirtyBytes),

			FlatRecoveryNS: flat.RecoveryNS,
			LSMRecoveryNS:  lsmRep.RecoveryNS,

			Compactions:      lsmRep.Compactions,
			FlushFaults:      lsmRep.FlushFaults,
			CompactionFaults: lsmRep.CompactionFaults,

			CkptRecoveries:   lsmRep.CkptRecoveries,
			FlatLinearizable: flat.Checked && flat.Linearizable,
			LSMLinearizable:  lsmRep.Checked && lsmRep.Linearizable,
		})
		releaseMemory()
	}
	read, err := runLSMReadBench(o)
	if err != nil {
		return nil, err
	}
	res.Read = read
	return res, nil
}

// runLSMReadBench builds a compacted tree directly over the NVMe cost
// model and measures the three read regimes. Fully deterministic: fixed
// key set, fixed probe order, virtual clock only.
func runLSMReadBench(o LSMBenchOptions) (*LSMReadBench, error) {
	const keys = 512
	const absent = 256
	cfg := lsm.Config{Preset: o.Preset}
	rb := &LSMReadBench{Keys: keys, Lookups: 2 * keys, Absent: absent}

	s := sim.NewScheduler()
	var benchErr error
	s.Spawn("lsm-read-bench", func(p *sim.Proc) {
		disk := persist.NewDisk(persist.DiskConfig{})
		tr, err := lsm.NewTree(persist.LSMDevice(disk), cfg)
		if err != nil {
			benchErr = err
			return
		}
		// Load in flush-sized batches, compacting whenever due, so the
		// final tree has the leveled shape a live replica would.
		// Present keys are the even OIDs; the absent probes are the odd
		// OIDs between them, inside every run's [MinOID, MaxOID] span, so
		// an absent lookup reaches the bloom filters instead of being
		// screened by the key-range check.
		var tmp uint64
		const batches = 2 * lsm.DefaultL0Trigger
		for b := 0; b < batches; b++ {
			mt := lsm.NewMemtable()
			for i := b; i < keys; i += batches {
				tmp++
				val := make([]byte, o.ValBytes)
				val[0] = byte(i)
				mt.Insert(store.OID(2*i), tmp, val)
			}
			if _, ok := tr.Flush(p, mt, tmp, nil, nil, nil); !ok {
				benchErr = fmt.Errorf("bench flush failed")
				return
			}
			for tr.NeedsCompaction() {
				if _, ok := tr.CompactOnce(p, nil); !ok {
					break
				}
			}
		}
		// Drop flush-warmed cache state: the read waves start cold.
		tr.Cache().DropAll()

		t0 := p.Now()
		for wave := 0; wave < 2; wave++ {
			for i := 0; i < keys; i++ {
				if _, ok := tr.Get(p, store.OID(2*i)); !ok {
					benchErr = fmt.Errorf("present key %d missing", 2*i)
					return
				}
			}
		}
		rb.PresentNS = int64(p.Now() - t0)
		t0 = p.Now()
		for i := 0; i < absent; i++ {
			if _, ok := tr.Get(p, store.OID(2*i+1)); ok {
				benchErr = fmt.Errorf("absent key %d present", 2*i+1)
				return
			}
		}
		rb.AbsentNS = int64(p.Now() - t0)
		st := tr.Stats()
		rb.CacheHits, rb.CacheMisses = st.CacheHits, st.CacheMisses
		rb.BloomNegatives = st.BloomNegatives
		if tot := rb.CacheHits + rb.CacheMisses; tot > 0 {
			rb.CacheHitRate = float64(rb.CacheHits) / float64(tot)
		}
	})
	if err := s.Run(); err != nil {
		return nil, err
	}
	if benchErr != nil {
		return nil, benchErr
	}
	return rb, nil
}
