package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"heron/internal/sim"
)

// smallRebalance shrinks the default pair so two deployments (off + on)
// fit in a unit-test budget.
func smallRebalance(scenario string) RebalanceOptions {
	o := DefaultRebalanceOptions(scenario, 1)
	o.Clients = 24
	o.Window = 24 * sim.Millisecond
	o.ShiftAt = 10 * sim.Millisecond
	o.Interval = 2 * sim.Millisecond
	return o
}

// TestRunRebalanceHotShift: the controller-on run commits changes and
// ends the window with a better tail than the frozen layout.
func TestRunRebalanceHotShift(t *testing.T) {
	res, err := RunRebalance(smallRebalance(BenchHotShift))
	if err != nil {
		t.Fatal(err)
	}
	if res.Off.ChangesApplied != 0 || len(res.Off.Decisions) != 0 {
		t.Fatalf("off run rebalanced: %+v", res.Off)
	}
	if res.On.ChangesApplied == 0 {
		t.Fatalf("controller applied nothing: %+v", res.On)
	}
	if len(res.On.Errors) > 0 {
		t.Fatalf("controller errors: %v", res.On.Errors)
	}
	if res.On.EpochAfter != 1+uint64(res.On.ChangesApplied)+uint64(res.On.ChangesAborted) {
		t.Fatalf("epoch %d after %d commits + %d aborts", res.On.EpochAfter,
			res.On.ChangesApplied, res.On.ChangesAborted)
	}
	if !res.Improved {
		t.Fatalf("no tail improvement: off tail p99 %d, on tail p99 %d",
			res.Off.TailP99NS, res.On.TailP99NS)
	}
	if res.On.Mig.BulkObjects == 0 {
		t.Fatalf("changes committed but nothing migrated: %+v", res.On.Mig)
	}
}

// TestRunRebalanceFlash: the flash crowd is shed too.
func TestRunRebalanceFlash(t *testing.T) {
	res, err := RunRebalance(smallRebalance(BenchFlash))
	if err != nil {
		t.Fatal(err)
	}
	if res.On.ChangesApplied == 0 {
		t.Fatalf("controller applied nothing: %+v", res.On)
	}
	if !res.Improved {
		t.Fatalf("no tail improvement: off tail p99 %d, on tail p99 %d",
			res.Off.TailP99NS, res.On.TailP99NS)
	}
}

// TestRunRebalanceDeterminism: same seed, byte-identical JSON.
func TestRunRebalanceDeterminism(t *testing.T) {
	mk := func() []byte {
		o := smallRebalance(BenchHotShift)
		o.Seed = 7
		res, err := RunRebalance(o)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := mk(), mk(); !bytes.Equal(a, b) {
		t.Fatalf("same-seed results differ:\n%s\n%s", a, b)
	}
}

// TestOpenLoopShadowRebalance: with the flag on and a skewed keyspace,
// the advisory planner reports acting decisions; with it off the result
// serializes without the field at all.
func TestOpenLoopShadowRebalance(t *testing.T) {
	opts := smallOpenLoop()
	opts.Rebalance = true
	// Steep Zipf concentrates the mass on key 0, so group 0 runs hot.
	opts.ZipfS = 2.5
	res, err := RunOpenLoop(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RebalancePlan) == 0 {
		t.Fatal("shadow planner issued no advisory decisions on a skewed workload")
	}
	for _, d := range res.RebalancePlan {
		if d.Hot != 0 {
			t.Fatalf("hot partition %d, want the zipf head's group 0: %v", d.Hot, d)
		}
	}

	opts.Rebalance = false
	off, err := RunOpenLoop(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(off)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b, []byte("RebalancePlan")) {
		t.Fatalf("off path serialized the shadow field: %s", b)
	}
}

// TestOpenLoopShadowDeterminism: the advisory plan replays byte-for-byte.
func TestOpenLoopShadowDeterminism(t *testing.T) {
	mk := func() []byte {
		opts := smallOpenLoop()
		opts.Rebalance = true
		opts.ZipfS = 2.5
		opts.Seed = 5
		res, err := RunOpenLoop(opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := mk(), mk(); !bytes.Equal(a, b) {
		t.Fatalf("same-seed shadow plans differ:\n%s\n%s", a, b)
	}
}
