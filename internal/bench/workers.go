package bench

import (
	"fmt"
	"strings"

	"heron/internal/obs"
	"heron/internal/sim"
)

// WorkerRow is one point of the multi-threaded execution ablation
// (Section III-D.1's extension, implemented in core's parallel executor).
type WorkerRow struct {
	Workers    int
	Throughput float64
	Latency    sim.Duration
}

// WorkerResult is the full ablation.
type WorkerResult struct {
	Rows []WorkerRow
}

// RunWorkerAblation sweeps the execution worker count under a local-only
// TPCC workload (single-partition requests are what the extension
// parallelizes; Delivery and Stock-Level still execute as barriers).
func RunWorkerAblation(workerCounts []int, warehouses int, window sim.Duration, o *obs.Observer) (*WorkerResult, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	if warehouses <= 0 {
		warehouses = 2
	}
	if window <= 0 {
		window = 100 * sim.Millisecond
	}
	res := &WorkerResult{}
	for _, workers := range workerCounts {
		opt := DefaultOptions(warehouses)
		opt.Window = window
		opt.LocalOnly = true
		opt.ClientsPerPartition = 12 // enough concurrency to feed workers
		opt.ExecWorkers = workers
		opt.Obs = o.Scope(fmt.Sprintf("workers%d", workers))
		r, err := RunHeron(opt)
		if err != nil {
			return nil, fmt.Errorf("workers=%d: %w", workers, err)
		}
		res.Rows = append(res.Rows, WorkerRow{
			Workers:    workers,
			Throughput: r.Throughput,
			Latency:    r.Latency.Mean(),
		})
	}
	return res, nil
}

// Format renders the ablation.
func (r *WorkerResult) Format() string {
	var b strings.Builder
	b.WriteString("Multi-threaded execution ablation (local-only TPCC)\n")
	fmt.Fprintf(&b, "%8s  %12s  %10s  %8s\n", "workers", "tput/s", "latency", "speedup")
	base := 0.0
	for _, row := range r.Rows {
		if base == 0 {
			base = row.Throughput
		}
		fmt.Fprintf(&b, "%8d  %12.0f  %10s  %7.2fx\n",
			row.Workers, row.Throughput, fmtDur(row.Latency), row.Throughput/base)
	}
	return b.String()
}
