package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"heron/internal/obs"
	"heron/internal/sim"
)

// Parallel-kernel comparison: the same fig7-scale open-loop workload
// executed once on a single simulation domain (the classic
// single-threaded kernel) and once with one domain per group under the
// conservative window barrier. Delivered counts must agree; the wall
// clock ratio is the kernel speedup. Wall-clock fields make this result
// machine-dependent by design — it feeds BENCH_pr6.json, not a
// determinism check.

// ParallelLeg is one side of the comparison.
type ParallelLeg struct {
	Domains   int
	WallMS    float64
	Events    uint64
	Submitted int
	Delivered int
}

// ParallelResult is the full comparison.
type ParallelResult struct {
	Scenario string
	Cores    int
	Groups   int
	Replicas int
	Clients  int
	Single   ParallelLeg
	Multi    ParallelLeg
	// Speedup is Single.WallMS / Multi.WallMS.
	Speedup float64
	// DeliveredMatch reports whether both kernels completed the same
	// workload (same submissions generated, same deliveries).
	DeliveredMatch bool
	// GateNote qualifies the speedup gate for the detected core count: a
	// speedup below 1 on a 1-2 core runner is the expected barrier
	// overhead, not a regression.
	GateNote string
}

// RunParallelCompare measures the parallel kernel against the
// single-domain kernel on a fig7-scale deployment (8 groups x 3 replicas
// by default) driven by the open-loop engine. Zero arguments select the
// defaults. The observer (may be nil) applies to the single-domain leg
// only: its critical-path shards are sized by the caller for one domain,
// and the two legs' requests share multicast ids, so profiling both
// would merge unrelated marks.
func RunParallelCompare(groups, replicas, clients int, window sim.Duration, o *obs.Observer) (*ParallelResult, error) {
	if groups <= 0 {
		groups = 8
	}
	if replicas <= 0 {
		replicas = 3
	}
	if clients <= 0 {
		clients = 100_000
	}
	if window <= 0 {
		window = 40 * sim.Millisecond
	}
	opts := DefaultOpenLoopOptions()
	opts.Groups = groups
	opts.Replicas = replicas
	opts.Clients = clients
	opts.RatePerClient = 4
	opts.Warmup = 5 * sim.Millisecond
	opts.Window = window

	res := &ParallelResult{
		Scenario: fmt.Sprintf("openloop-%dg%dr-%dclients", groups, replicas, clients),
		Cores:    runtime.NumCPU(),
		Groups:   groups,
		Replicas: replicas,
		Clients:  clients,
	}
	leg := func(domains int, lo *obs.Observer) (ParallelLeg, error) {
		o := opts
		o.Domains = domains
		o.Obs = lo
		t0 := time.Now()
		r, err := RunOpenLoop(o)
		if err != nil {
			return ParallelLeg{}, err
		}
		return ParallelLeg{
			Domains:   domains,
			WallMS:    float64(time.Since(t0).Microseconds()) / 1000,
			Events:    r.Events,
			Submitted: r.Submitted,
			Delivered: r.Delivered,
		}, nil
	}
	var err error
	if res.Single, err = leg(1, o); err != nil {
		return nil, err
	}
	if res.Multi, err = leg(groups, nil); err != nil {
		return nil, err
	}
	if res.Multi.WallMS > 0 {
		res.Speedup = res.Single.WallMS / res.Multi.WallMS
	}
	// The two kernels schedule cross-group verbs differently, so virtual
	// timings differ slightly — but the workload is identical (same seeds,
	// same arrival chains) and an uncongested run delivers all of it.
	res.DeliveredMatch = res.Single.Submitted == res.Multi.Submitted &&
		res.Single.Delivered == res.Multi.Delivered
	res.GateNote = speedupGateNote(res.Cores)
	return res, nil
}

// speedupGateNote explains what the speedup gate means on this machine.
// The multi-domain leg runs one OS thread per domain; with fewer cores
// than domains those threads time-share, and on 1-2 cores the window
// barrier makes the parallel kernel strictly slower than the serial one.
func speedupGateNote(cores int) string {
	switch {
	case cores <= 2:
		return fmt.Sprintf("%d core(s) detected: speedup < 1 is expected (barrier overhead without parallelism); gate on delivered_match only", cores)
	case cores < 8:
		return fmt.Sprintf("%d cores detected: expect partial speedup (domains time-share cores)", cores)
	default:
		return fmt.Sprintf("%d cores detected: expect speedup > 1", cores)
	}
}

// Format renders the comparison.
func (r *ParallelResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Parallel simulation kernel: %s on %d core(s)\n", r.Scenario, r.Cores)
	fmt.Fprintf(&b, "%-10s %-10s %-12s %-12s %-12s\n", "domains", "wall_ms", "events", "submitted", "delivered")
	for _, leg := range []ParallelLeg{r.Single, r.Multi} {
		fmt.Fprintf(&b, "%-10d %-10.1f %-12d %-12d %-12d\n",
			leg.Domains, leg.WallMS, leg.Events, leg.Submitted, leg.Delivered)
	}
	fmt.Fprintf(&b, "speedup: %.2fx  delivered_match: %v\n", r.Speedup, r.DeliveredMatch)
	if r.GateNote != "" {
		fmt.Fprintf(&b, "gate: %s\n", r.GateNote)
	}
	return b.String()
}
