package bench

import (
	"fmt"
	"strings"

	"heron/internal/obs"
	"heron/internal/sim"
)

// Fig5Row compares Heron and DynaStar at one warehouse count.
type Fig5Row struct {
	Warehouses       int
	HeronTput        float64
	DynaStarTput     float64
	HeronLatency     sim.Duration
	DynaStarLatency  sim.Duration
	TputRatio        float64
	LatencyRatio     float64
	HeronCompleted   int
	DynaStarComplete int
}

// Fig5Result is the full figure.
type Fig5Result struct {
	Rows []Fig5Row
}

// RunFig5 regenerates Figure 5: peak throughput and latency of Heron vs
// DynaStar under TPCC.
func RunFig5(warehouseCounts []int, window sim.Duration, o *obs.Observer) (*Fig5Result, error) {
	if len(warehouseCounts) == 0 {
		warehouseCounts = []int{1, 2, 4, 8, 16}
	}
	res := &Fig5Result{}
	for _, wh := range warehouseCounts {
		opt := DefaultOptions(wh)
		if window > 0 {
			opt.Window = window
		}
		opt.Obs = o.Scope(fmt.Sprintf("%dWH", wh))
		h, err := RunHeron(opt)
		if err != nil {
			return nil, fmt.Errorf("fig5 heron %dWH: %w", wh, err)
		}
		dOpt := opt
		dOpt.ClientsPerPartition = 12 // higher latency needs more closed-loop clients to saturate
		dOpt.Window = opt.Window * 2  // and a longer window for sample counts
		d, err := RunDynaStar(dOpt)
		if err != nil {
			return nil, fmt.Errorf("fig5 dynastar %dWH: %w", wh, err)
		}
		row := Fig5Row{
			Warehouses:       wh,
			HeronTput:        h.Throughput,
			DynaStarTput:     d.Throughput,
			HeronLatency:     h.Latency.Mean(),
			DynaStarLatency:  d.Latency.Mean(),
			HeronCompleted:   h.Completed,
			DynaStarComplete: d.Completed,
		}
		if d.Throughput > 0 {
			row.TputRatio = h.Throughput / d.Throughput
		}
		if h.Latency.Mean() > 0 {
			row.LatencyRatio = float64(d.Latency.Mean()) / float64(h.Latency.Mean())
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders the figure.
func (r *Fig5Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 5: Heron vs DynaStar under TPCC\n")
	fmt.Fprintf(&b, "%4s  %14s  %14s  %8s  %12s  %12s  %8s\n",
		"WH", "Heron tput/s", "DynaStar t/s", "ratio", "Heron lat", "DynaStar lat", "ratio")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%4d  %14.0f  %14.0f  %7.1fx  %12s  %12s  %7.1fx\n",
			row.Warehouses, row.HeronTput, row.DynaStarTput, row.TputRatio,
			fmtDur(row.HeronLatency), fmtDur(row.DynaStarLatency), row.LatencyRatio)
	}
	return b.String()
}
