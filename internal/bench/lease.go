package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"heron/internal/core"
	"heron/internal/lease"
	"heron/internal/multicast"
	"heron/internal/obs"
	"heron/internal/sim"
	"heron/internal/store"
	"heron/internal/wire"
)

// Lease benchmark: how much latency does the lease fast path actually
// save? A seeded read-skewed closed-loop workload runs twice over the
// same deployment shape — leases off (every read is an ordered
// multicast round) and leases on (reads probe the partition's lease
// holder and fall back to the ordered path on decline) — and the
// result compares the measured read latencies. The CI gate requires
// the leased local read to beat the ordered read by at least
// LeaseGateSpeedup.

// LeaseGateSpeedup is the acceptance floor on the ordered-read /
// local-read mean latency ratio.
const LeaseGateSpeedup = 3.0

// LeaseBenchOptions configure one off/on benchmark pair.
type LeaseBenchOptions struct {
	Partitions int
	Replicas   int
	Keys       int // per partition
	Clients    int
	// ReadPct is the read share of the mix in percent (the read-skewed
	// default is 95, YCSB-B's ratio).
	ReadPct int
	// Think is the mean closed-loop client think time.
	Think sim.Duration

	Warmup sim.Duration
	Window sim.Duration
	Seed   int64

	OpTimeout sim.Duration

	Obs *obs.Observer
}

// DefaultLeaseBenchOptions sizes a pair so one run finishes in seconds
// of wall clock.
func DefaultLeaseBenchOptions(seed int64) LeaseBenchOptions {
	return LeaseBenchOptions{
		Partitions: 2,
		Replicas:   3,
		Keys:       64,
		Clients:    24,
		ReadPct:    95,
		Think:      20 * sim.Microsecond,
		Warmup:     2 * sim.Millisecond,
		Window:     20 * sim.Millisecond,
		Seed:       seed,
		OpTimeout:  10 * sim.Millisecond,
	}
}

// LeaseRunStats is the outcome of one run (leases off or on). Every
// field derives from virtual-clock state: same seed, same bytes.
type LeaseRunStats struct {
	Leases    bool `json:"leases"`
	Ops       int  `json:"ops"`
	FailedOps int  `json:"failed_ops"`
	Reads     int  `json:"reads"`
	Updates   int  `json:"updates"`

	// LocalReads / FallbackReads split the on-run's reads by path; the
	// off-run leaves both zero (all its reads are ordered).
	LocalReads    uint64 `json:"local_reads,omitempty"`
	FallbackReads uint64 `json:"fallback_reads,omitempty"`
	Grants        uint64 `json:"grants,omitempty"`
	Revokes       uint64 `json:"revokes,omitempty"`

	// Read latencies: the off-run's are ordered rounds; the on-run's
	// cover only reads served locally by a holder (fallbacks are counted
	// above but scored apart, so the comparison is path vs path).
	ReadMeanNS int64 `json:"read_mean_ns"`
	ReadP50NS  int64 `json:"read_p50_ns"`
	ReadP99NS  int64 `json:"read_p99_ns"`
	// FallbackMeanNS is the on-run's ordered-fallback read mean (0 when
	// every read hit the fast path).
	FallbackMeanNS int64 `json:"fallback_mean_ns,omitempty"`

	UpdateMeanNS int64 `json:"update_mean_ns"`
	UpdateP99NS  int64 `json:"update_p99_ns"`
}

// LeaseResult pairs the leases-off and leases-on runs of one seeded
// read-skewed workload.
type LeaseResult struct {
	Partitions int   `json:"partitions"`
	Replicas   int   `json:"replicas"`
	Keys       int   `json:"keys"`
	Clients    int   `json:"clients"`
	ReadPct    int   `json:"read_pct"`
	Seed       int64 `json:"seed"`
	WindowNS   int64 `json:"window_ns"`

	Off LeaseRunStats `json:"off"`
	On  LeaseRunStats `json:"on"`

	// Speedup is the ordered-read mean over the local-read mean.
	Speedup float64 `json:"speedup"`
}

// Gate is the CI pass condition: the fast path actually served the
// majority of the on-run's reads and beat the ordered path by the
// acceptance floor.
func (r *LeaseResult) Gate() bool {
	return r.On.LocalReads > r.On.FallbackReads &&
		r.Off.ReadMeanNS > 0 && r.On.ReadMeanNS > 0 &&
		r.Speedup >= LeaseGateSpeedup
}

// leaseBenchApp is the register application: payload
// [op u8][oid u64][val u64]; op 0 reads the object, op 1 writes val.
type leaseBenchApp struct{}

func (leaseBenchApp) ReadSet(req *core.Request) []store.OID {
	r := wire.NewReader(req.Payload)
	if r.U8() == 0 {
		return []store.OID{store.OID(r.U64())}
	}
	return nil
}

func (leaseBenchApp) Execute(ctx *core.ExecContext) core.Outcome {
	r := wire.NewReader(ctx.Req.Payload)
	op, oid, val := r.U8(), store.OID(r.U64()), r.U64()
	if op == 0 {
		return core.Outcome{Response: append([]byte(nil), ctx.Values[oid]...)}
	}
	w := wire.NewWriter(8)
	w.U64(val)
	v := w.Finish()
	return core.Outcome{Response: v, Writes: []core.Write{{OID: oid, Val: v}}}
}

var leaseBenchParter = core.PartitionerFunc(func(oid store.OID) core.PartitionID {
	return core.PartitionID(uint64(oid) >> 32)
})

func leaseBenchOID(part core.PartitionID, key uint32) store.OID {
	return store.OID(uint64(part)<<32 | uint64(key))
}

func encodeLeaseBenchOp(op uint8, oid store.OID, val uint64) []byte {
	w := wire.NewWriter(17)
	w.U8(op)
	w.U64(uint64(oid))
	w.U64(val)
	return w.Finish()
}

// RunLeaseBench executes the off/on pair.
func RunLeaseBench(o LeaseBenchOptions) (*LeaseResult, error) {
	if o.Partitions < 1 || o.Replicas < 2 || o.Keys < 1 || o.Clients < 1 {
		return nil, fmt.Errorf("lease bench: need >=1 partition, >=2 replicas, >=1 key and client")
	}
	if o.ReadPct < 1 || o.ReadPct > 100 {
		return nil, fmt.Errorf("lease bench: read pct %d outside [1, 100]", o.ReadPct)
	}
	res := &LeaseResult{
		Partitions: o.Partitions,
		Replicas:   o.Replicas,
		Keys:       o.Keys,
		Clients:    o.Clients,
		ReadPct:    o.ReadPct,
		Seed:       o.Seed,
		WindowNS:   int64(o.Window),
	}
	off, err := runLeaseBenchOnce(o, false)
	if err != nil {
		return nil, err
	}
	on, err := runLeaseBenchOnce(o, true)
	if err != nil {
		return nil, err
	}
	res.Off, res.On = *off, *on
	if off.ReadMeanNS > 0 && on.ReadMeanNS > 0 {
		res.Speedup = float64(off.ReadMeanNS) / float64(on.ReadMeanNS)
	}
	return res, nil
}

// runLeaseBenchOnce runs the seeded workload with leases off or on.
func runLeaseBenchOnce(o LeaseBenchOptions, on bool) (*LeaseRunStats, error) {
	s := sim.NewScheduler()
	layout := Layout(o.Partitions, o.Replicas)
	cfg := core.DefaultConfig(multicast.DefaultConfig(layout))
	cfg.StoreCapacity = o.Keys*store.SlotSize(8) + 1<<12
	newApp := func(core.PartitionID, int) core.Application { return leaseBenchApp{} }
	d, err := core.NewDeployment(s, cfg, newApp, leaseBenchParter)
	if err != nil {
		return nil, err
	}
	err = d.PopulateAll(func(part core.PartitionID, rank int, rep *core.Replica) error {
		for k := uint32(0); k < uint32(o.Keys); k++ {
			if err := rep.Store().Register(leaseBenchOID(part, k), 8); err != nil {
				return err
			}
			w := wire.NewWriter(8)
			w.U64(0)
			if err := rep.Store().Init(leaseBenchOID(part, k), w.Finish()); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	d.Observe(o.Obs)
	d.Start()

	warmupEnd := sim.Time(o.Warmup)
	measureEnd := warmupEnd + sim.Time(o.Window)

	var mgr *lease.Manager
	if on {
		mgr = lease.Attach(d, lease.Options{Until: measureEnd})
		mgr.Start()
	}

	stats := &LeaseRunStats{Leases: on}
	readLat := &LatencyRecorder{}
	fallbackLat := &LatencyRecorder{}
	updateLat := &LatencyRecorder{}
	readers := make([]*lease.ReadClient, 0, o.Clients)

	for ci := 0; ci < o.Clients; ci++ {
		cl := d.NewClient()
		var rc *lease.ReadClient
		if mgr != nil {
			rc = lease.NewReadClient(cl, mgr)
			readers = append(readers, rc)
		}
		rng := rand.New(rand.NewSource(o.Seed*7919 + int64(ci)))
		s.Spawn(fmt.Sprintf("lease-client%d", ci), func(p *sim.Proc) {
			for p.Now() < measureEnd {
				part := core.PartitionID(rng.Intn(o.Partitions))
				oid := leaseBenchOID(part, uint32(rng.Intn(o.Keys)))
				isRead := rng.Intn(100) < o.ReadPct
				t0 := p.Now()
				var rec *LatencyRecorder
				if isRead {
					rec = readLat
					if rc != nil {
						if _, ok := rc.TryLocal(p, part, oid); !ok {
							rec = fallbackLat
							payload := encodeLeaseBenchOp(0, oid, 0)
							if _, ok := cl.SubmitTimeout(p, []core.PartitionID{part}, payload, o.OpTimeout); !ok {
								stats.Ops++
								stats.FailedOps++
								continue
							}
						}
					} else {
						payload := encodeLeaseBenchOp(0, oid, 0)
						if _, ok := cl.SubmitTimeout(p, []core.PartitionID{part}, payload, o.OpTimeout); !ok {
							stats.Ops++
							stats.FailedOps++
							continue
						}
					}
				} else {
					rec = updateLat
					payload := encodeLeaseBenchOp(1, oid, uint64(t0))
					if _, ok := cl.SubmitTimeout(p, []core.PartitionID{part}, payload, o.OpTimeout); !ok {
						stats.Ops++
						stats.FailedOps++
						continue
					}
				}
				stats.Ops++
				if t0 >= warmupEnd {
					if isRead {
						stats.Reads++
					} else {
						stats.Updates++
					}
					rec.Add(sim.Duration(p.Now() - t0))
				}
				p.Sleep(sim.Duration(1+rng.Int63n(2*int64(o.Think))) * sim.Nanosecond)
			}
		})
	}
	if err := s.RunUntil(measureEnd + sim.Time(5*sim.Millisecond)); err != nil {
		return nil, err
	}

	if readLat.Count() > 0 {
		stats.ReadMeanNS = int64(readLat.Mean())
		stats.ReadP50NS = int64(readLat.Percentile(50))
		stats.ReadP99NS = int64(readLat.Percentile(99))
	}
	if fallbackLat.Count() > 0 {
		stats.FallbackMeanNS = int64(fallbackLat.Mean())
	}
	if updateLat.Count() > 0 {
		stats.UpdateMeanNS = int64(updateLat.Mean())
		stats.UpdateP99NS = int64(updateLat.Percentile(99))
	}
	for _, rc := range readers {
		stats.LocalReads += rc.Local
		stats.FallbackReads += rc.Fallback
	}
	if mgr != nil {
		stats.Grants = mgr.Grants
		stats.Revokes = mgr.Revokes
	}
	releaseMemory()
	return stats, nil
}

// Format renders the off/on comparison as a table.
func (r *LeaseResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Lease bench: seed %d, %dx%d deployment, %d keys/part, %d clients, %d%% reads, window %s\n",
		r.Seed, r.Partitions, r.Replicas, r.Keys, r.Clients, r.ReadPct,
		fmtDur(sim.Duration(r.WindowNS)))
	fmt.Fprintf(&b, "%-10s %8s %7s %8s %8s %8s %10s %10s %10s\n",
		"leases", "ops", "failed", "reads", "local", "fallbk", "read-mean", "read-p99", "upd-mean")
	row := func(name string, st *LeaseRunStats) {
		fmt.Fprintf(&b, "%-10s %8d %7d %8d %8d %8d %10s %10s %10s\n",
			name, st.Ops, st.FailedOps, st.Reads, st.LocalReads, st.FallbackReads,
			fmtDur(sim.Duration(st.ReadMeanNS)), fmtDur(sim.Duration(st.ReadP99NS)),
			fmtDur(sim.Duration(st.UpdateMeanNS)))
	}
	row("off", &r.Off)
	row("on", &r.On)
	fmt.Fprintf(&b, "local/ordered read speedup: %.2fx (gate >= %.1fx: %v)\n",
		r.Speedup, LeaseGateSpeedup, r.Gate())
	return b.String()
}
