// Package obs is the virtual-time observability layer: a span tracer and
// a metrics registry, both stamped from the simulation clock.
//
// Because all protocol logic runs on a deterministic virtual clock, traces
// here are exact rather than sampled: every span boundary is a scheduler
// instant, two runs with the same seed emit byte-identical trace files,
// and a latency histogram is the full population, not a sketch.
//
// Everything is nil-safe: every method on a nil *Observer, *Tracer,
// *Track, *Span, *Metrics, *Counter, *Gauge or *Histogram is a no-op (or
// returns nil), so instrumented code paths carry a single pointer test
// when observability is disabled and zero allocations.
package obs

import "heron/internal/sim"

// Clock supplies the current virtual time. *sim.Scheduler and *sim.Proc
// both satisfy it.
type Clock interface {
	Now() sim.Time
}

// Observer bundles a Tracer and a Metrics registry behind one handle that
// instrumented subsystems accept, with optional name scoping so several
// sub-runs (e.g. the five workloads of Fig. 6) land in one trace file
// under distinct process groups and metric prefixes.
type Observer struct {
	tracer  *Tracer
	metrics *Metrics
	// Sharded instruments (PR 7): unlike the tracer and the metrics
	// registry these are safe under the parallel simulation kernel —
	// each shard/partition is only touched by its owning domain thread
	// and merges deterministically at report time.
	critpath *CritPath
	heat     *Heat
	flight   *FlightRecorder
	prefix   string
}

// New returns an observer over the given tracer and metrics registry,
// either of which may be nil. It returns nil when both are nil, so the
// disabled case stays a nil pointer all the way down.
func New(t *Tracer, m *Metrics) *Observer {
	return NewFull(t, m, nil, nil, nil)
}

// NewFull returns an observer over any combination of instruments; nil
// members stay on their zero-cost disabled paths. It returns nil when
// every instrument is nil.
func NewFull(t *Tracer, m *Metrics, cp *CritPath, h *Heat, fr *FlightRecorder) *Observer {
	if t == nil && m == nil && cp == nil && h == nil && fr == nil {
		return nil
	}
	return &Observer{tracer: t, metrics: m, critpath: cp, heat: h, flight: fr}
}

// WithFlight returns an observer like o but carrying fr (o itself is
// not modified; o may be nil). Harnesses that keep the flight recorder
// always armed use this to graft it onto whatever observer the caller
// supplied.
func WithFlight(o *Observer, fr *FlightRecorder) *Observer {
	if o == nil {
		return NewFull(nil, nil, nil, nil, fr)
	}
	c := *o
	c.flight = fr
	return &c
}

// WithHeat returns an observer like o but carrying h (o itself is not
// modified; o may be nil). Harnesses that need the heat feed armed —
// e.g. the open-loop engine's shadow rebalance planner — graft it onto
// whatever observer the caller supplied.
func WithHeat(o *Observer, h *Heat) *Observer {
	if o == nil {
		return NewFull(nil, nil, nil, h, nil)
	}
	c := *o
	c.heat = h
	return &c
}

// Tracer returns the underlying tracer (nil when disabled).
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// Metrics returns the underlying metrics registry (nil when disabled).
func (o *Observer) Metrics() *Metrics {
	if o == nil {
		return nil
	}
	return o.metrics
}

// Scope returns a view of the observer whose track process names and
// metric names are prefixed with name + "/". Scopes nest. The sharded
// instruments are identity-keyed (domain/partition indices, request
// ids), so they pass through unprefixed.
func (o *Observer) Scope(name string) *Observer {
	if o == nil {
		return nil
	}
	c := *o
	c.prefix = o.prefix + name + "/"
	return &c
}

// Sharded returns a view of the observer carrying only the
// domain-sharded instruments (critical path, heat, flight recorder),
// with the tracer and metrics registry stripped. Multi-domain harnesses
// hand this view to components on other domains: the tracer and the
// registry are single-domain structures, while every sharded instrument
// is touched only by its owning domain thread. Returns nil when no
// sharded instrument is present.
func (o *Observer) Sharded() *Observer {
	if o == nil {
		return nil
	}
	return NewFull(nil, nil, o.critpath, o.heat, o.flight)
}

// CritPath returns the critical-path engine (nil when disabled).
func (o *Observer) CritPath() *CritPath {
	if o == nil {
		return nil
	}
	return o.critpath
}

// CritPathShard returns the critical-path shard for a simulation
// domain (nil when disabled). Resolve at wiring time.
func (o *Observer) CritPathShard(domain int) *CPShard {
	if o == nil {
		return nil
	}
	return o.critpath.Shard(domain)
}

// Heat returns the partition-heat collector (nil when disabled).
func (o *Observer) Heat() *Heat {
	if o == nil {
		return nil
	}
	return o.heat
}

// HeatPartition returns partition i's heat collector (nil when
// disabled). Resolve at wiring time.
func (o *Observer) HeatPartition(i int) *PartitionHeat {
	if o == nil {
		return nil
	}
	return o.heat.Partition(i)
}

// Flight returns the flight recorder (nil when disabled).
func (o *Observer) Flight() *FlightRecorder {
	if o == nil {
		return nil
	}
	return o.flight
}

// FlightShard returns the flight ring for a simulation domain (nil
// when disabled). Resolve at wiring time.
func (o *Observer) FlightShard(domain int) *FlightShard {
	if o == nil {
		return nil
	}
	return o.flight.Shard(domain)
}

// Track registers (or returns) the span track for a (process, thread)
// pair, applying the observer's scope prefix to the process name.
func (o *Observer) Track(process, thread string, clock Clock) *Track {
	if o == nil {
		return nil
	}
	return o.tracer.Track(o.prefix+process, thread, clock)
}

// Counter returns the named counter, applying the scope prefix.
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.metrics.Counter(o.prefix + name)
}

// Gauge returns the named gauge, applying the scope prefix.
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.metrics.Gauge(o.prefix + name)
}

// Histogram returns the named latency histogram, applying the scope
// prefix.
func (o *Observer) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	return o.metrics.Histogram(o.prefix + name)
}
