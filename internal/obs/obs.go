// Package obs is the virtual-time observability layer: a span tracer and
// a metrics registry, both stamped from the simulation clock.
//
// Because all protocol logic runs on a deterministic virtual clock, traces
// here are exact rather than sampled: every span boundary is a scheduler
// instant, two runs with the same seed emit byte-identical trace files,
// and a latency histogram is the full population, not a sketch.
//
// Everything is nil-safe: every method on a nil *Observer, *Tracer,
// *Track, *Span, *Metrics, *Counter, *Gauge or *Histogram is a no-op (or
// returns nil), so instrumented code paths carry a single pointer test
// when observability is disabled and zero allocations.
package obs

import "heron/internal/sim"

// Clock supplies the current virtual time. *sim.Scheduler and *sim.Proc
// both satisfy it.
type Clock interface {
	Now() sim.Time
}

// Observer bundles a Tracer and a Metrics registry behind one handle that
// instrumented subsystems accept, with optional name scoping so several
// sub-runs (e.g. the five workloads of Fig. 6) land in one trace file
// under distinct process groups and metric prefixes.
type Observer struct {
	tracer  *Tracer
	metrics *Metrics
	prefix  string
}

// New returns an observer over the given tracer and metrics registry,
// either of which may be nil. It returns nil when both are nil, so the
// disabled case stays a nil pointer all the way down.
func New(t *Tracer, m *Metrics) *Observer {
	if t == nil && m == nil {
		return nil
	}
	return &Observer{tracer: t, metrics: m}
}

// Tracer returns the underlying tracer (nil when disabled).
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// Metrics returns the underlying metrics registry (nil when disabled).
func (o *Observer) Metrics() *Metrics {
	if o == nil {
		return nil
	}
	return o.metrics
}

// Scope returns a view of the observer whose track process names and
// metric names are prefixed with name + "/". Scopes nest.
func (o *Observer) Scope(name string) *Observer {
	if o == nil {
		return nil
	}
	return &Observer{tracer: o.tracer, metrics: o.metrics, prefix: o.prefix + name + "/"}
}

// Track registers (or returns) the span track for a (process, thread)
// pair, applying the observer's scope prefix to the process name.
func (o *Observer) Track(process, thread string, clock Clock) *Track {
	if o == nil {
		return nil
	}
	return o.tracer.Track(o.prefix+process, thread, clock)
}

// Counter returns the named counter, applying the scope prefix.
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.metrics.Counter(o.prefix + name)
}

// Gauge returns the named gauge, applying the scope prefix.
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.metrics.Gauge(o.prefix + name)
}

// Histogram returns the named latency histogram, applying the scope
// prefix.
func (o *Observer) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	return o.metrics.Histogram(o.prefix + name)
}
