package obs

import (
	"testing"

	"heron/internal/sim"
)

// TestDisabledObserverZeroAlloc asserts the package contract: with
// observability disabled (nil observer / nil instruments), every call an
// instrumented hot path makes is a pointer test and nothing else — zero
// allocations per operation. The request hot path relies on this to keep
// the disabled layer free.
func TestDisabledObserverZeroAlloc(t *testing.T) {
	var o *Observer
	var sh *CPShard
	var fl *FlightShard
	var ph *PartitionHeat
	var tk *Track
	id := ReqID{Node: 1, Seq: 2}

	cases := map[string]func(){
		"observer-accessors": func() {
			_ = o.Tracer()
			_ = o.Metrics()
			_ = o.CritPath()
			_ = o.Heat()
			_ = o.Flight()
		},
		"observer-resolvers": func() {
			_ = o.CritPathShard(0)
			_ = o.HeatPartition(0)
			_ = o.FlightShard(0)
			_ = o.Counter("x")
			_ = o.Gauge("x")
			_ = o.Histogram("x")
		},
		"critpath-shard": func() {
			sh.Mark(id, SegSubmit, 100)
			sh.Record(id, SegNicWait, 100, 200)
		},
		"flight-shard": func() {
			fl.Record(100, FltDeliver, 1, 2, 3)
		},
		"heat-partition": func() {
			ph.RecordExec(100, 10)
			ph.RecordQueue(100, 4)
			ph.Touch(7)
		},
		"span-track": func() {
			sp := tk.Begin("req")
			sp.End()
			tk.Instant("x", nil)
		},
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op on the disabled path, want 0", name, allocs)
		}
	}
}

// BenchmarkDisabledHotPath measures the full set of per-request
// disabled-observer calls a replica makes (the b.ReportAllocs output is
// the reviewable record of the zero-alloc property).
func BenchmarkDisabledHotPath(b *testing.B) {
	var sh *CPShard
	var fl *FlightShard
	var ph *PartitionHeat
	id := ReqID{Node: 1, Seq: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		at := sim.Time(i)
		sh.Mark(id, SegSubmit, at)
		sh.Record(id, SegAppExecute, at, at+10)
		sh.Mark(id, SegDone, at+10)
		fl.Record(at, FltExec, 1, uint64(i), 0)
		ph.RecordExec(at, 10)
		ph.Touch(uint64(i))
	}
}
