package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"heron/internal/sim"
)

// Chrome trace_event JSON export (the "JSON Array Format" with an object
// wrapper), loadable in chrome://tracing and Perfetto. Timestamps are
// microseconds with nanosecond fractions; the virtual clock is exact, so
// the emitted file is byte-identical across same-seed runs.

// jsonEvent is the wire form of one trace event. Field order fixes the
// output byte layout; Args maps marshal with sorted keys, so the whole
// file is deterministic.
type jsonEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// usec converts virtual nanoseconds to trace microseconds.
func usec(t sim.Time) float64 { return float64(t) / 1e3 }

// WriteJSON writes the full trace: per-track metadata events followed by
// all span/instant/counter events sorted by timestamp (stable, so
// same-instant events keep their causal append order).
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"displayTimeUnit":"ns","traceEvents":[]}`)
		return err
	}
	var out []jsonEvent

	// Metadata: one process_name per pid, one thread_name per track.
	seenPid := make(map[int]bool)
	for _, tk := range t.tracks {
		if !seenPid[tk.pid] {
			seenPid[tk.pid] = true
			out = append(out, jsonEvent{Name: "process_name", Ph: "M", Pid: tk.pid, Tid: 0,
				Args: map[string]any{"name": tk.process}})
		}
		out = append(out, jsonEvent{Name: "thread_name", Ph: "M", Pid: tk.pid, Tid: tk.tid,
			Args: map[string]any{"name": tk.thread}})
	}

	evs := make([]Event, len(t.events))
	copy(evs, t.events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Ts < evs[j].Ts })
	for _, ev := range evs {
		je := jsonEvent{
			Name: ev.Name,
			Cat:  ev.Cat,
			Ph:   string(ev.Phase),
			Ts:   usec(ev.Ts),
			Pid:  ev.Pid,
			Tid:  ev.Tid,
			Args: ev.Args,
		}
		switch ev.Phase {
		case PhaseComplete:
			d := usec(sim.Time(ev.Dur))
			je.Dur = &d
		case PhaseAsyncBegin, PhaseAsyncEnd:
			je.ID = fmt.Sprintf("0x%x", ev.ID)
			if je.Cat == "" {
				je.Cat = "async"
			}
		case PhaseInstant:
			je.S = "t"
		}
		out = append(out, je)
	}

	return writeTraceEvents(w, out)
}

// writeTraceEvents emits the trace_event wrapper with one event per
// line. Field order and sorted Args keys fix the byte layout.
func writeTraceEvents(w io.Writer, out []jsonEvent) error {
	if len(out) == 0 {
		_, err := io.WriteString(w, `{"displayTimeUnit":"ns","traceEvents":[]}`)
		return err
	}
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, je := range out {
		b, err := json.Marshal(je)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(out)-1 {
			sep = "\n"
		}
		if _, err := w.Write(append(b, sep...)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

// Summary renders a plain-text flame summary: per (process, span name),
// the call count, total, mean and max durations, ordered by total time
// descending. It is the terminal-friendly complement to the JSON trace.
func (t *Tracer) Summary() string {
	if t == nil || len(t.aggKeys) == 0 {
		return "(no spans recorded)\n"
	}
	keys := make([]aggKey, len(t.aggKeys))
	copy(keys, t.aggKeys)
	sort.SliceStable(keys, func(i, j int) bool {
		a, b := t.agg[keys[i]], t.agg[keys[j]]
		if a.total != b.total {
			return a.total > b.total
		}
		if keys[i].process != keys[j].process {
			return keys[i].process < keys[j].process
		}
		return keys[i].name < keys[j].name
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-48s  %8s  %12s  %10s  %10s\n", "span (process/name)", "count", "total", "mean", "max")
	for _, k := range keys {
		v := t.agg[k]
		mean := v.total / sim.Duration(v.count)
		fmt.Fprintf(&b, "%-48s  %8d  %12s  %10s  %10s\n",
			truncName(k.process+" "+k.name, 48), v.count, fmtDur(v.total), fmtDur(mean), fmtDur(v.max))
	}
	return b.String()
}

// truncName bounds a label, keeping the tail (the discriminating part).
func truncName(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return "…" + s[len(s)-n+1:]
}

// fmtDur renders a virtual duration compactly.
func fmtDur(d sim.Duration) string {
	switch {
	case d < sim.Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < sim.Millisecond:
		return fmt.Sprintf("%.1fus", float64(d)/float64(sim.Microsecond))
	case d < sim.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(sim.Millisecond))
	default:
		return fmt.Sprintf("%.3fs", float64(d)/float64(sim.Second))
	}
}
