package obs

import (
	"bytes"
	"testing"

	"heron/internal/sim"
)

// TestHeatCadenceRoll checks lazy rolling cuts one sample per cadence
// interval with the right aggregates, and Report flushes the tail.
func TestHeatCadenceRoll(t *testing.T) {
	h := NewHeat(1, 100, 0) // cadence 100ns
	ph := h.Partition(0)
	ph.RecordExec(10, 40)
	ph.RecordExec(20, 60)
	ph.RecordQueue(30, 7)
	ph.RecordExec(150, 100) // crosses into interval [100,200)
	rep := h.Report(300)

	p := rep.Partitions[0]
	if p.Executed != 3 {
		t.Fatalf("executed = %d, want 3", p.Executed)
	}
	if len(p.Samples) != 2 {
		t.Fatalf("samples = %d, want 2 (idle tail trimmed): %+v", len(p.Samples), p.Samples)
	}
	s0, s1 := p.Samples[0], p.Samples[1]
	if s0.AtNS != 0 || s0.Executed != 2 || s0.QueueMax != 7 || s0.MeanLatNS != 50 || s0.MaxLatNS != 60 {
		t.Fatalf("interval 0 = %+v", s0)
	}
	if s1.AtNS != 100 || s1.Executed != 1 || s1.MeanLatNS != 100 {
		t.Fatalf("interval 1 = %+v", s1)
	}
}

// TestHeatTopKSketch checks the space-saving sketch keeps the hot keys
// and bounds the error of displaced entries.
func TestHeatTopKSketch(t *testing.T) {
	h := NewHeat(1, 100, 2)
	ph := h.Partition(0)
	for i := 0; i < 10; i++ {
		ph.Touch(1)
	}
	for i := 0; i < 5; i++ {
		ph.Touch(2)
	}
	ph.Touch(3) // displaces nothing yet? k=2 full with {1,2}; 3 displaces the min (2:5)
	top := ph.TopKeys()
	if len(top) != 2 {
		t.Fatalf("top = %+v, want 2 entries", top)
	}
	if top[0].Key != 1 || top[0].Count != 10 || top[0].Err != 0 {
		t.Fatalf("hottest = %+v, want key 1 count 10", top[0])
	}
	// Key 3 inherited key 2's count as overestimate, with err bound 5.
	if top[1].Key != 3 || top[1].Count != 6 || top[1].Err != 5 {
		t.Fatalf("displaced entry = %+v, want key 3 count 6 err 5", top[1])
	}
}

// TestHeatReportDeterminism: identical recorded content serializes to
// identical bytes (partitions in index order, keys content-sorted).
func TestHeatReportDeterminism(t *testing.T) {
	mk := func() []byte {
		h := NewHeat(3, 100, 4)
		for part := 0; part < 3; part++ {
			ph := h.Partition(part)
			for i := 0; i < 50; i++ {
				ph.RecordExec(sim.Time(i*17), sim.Duration(i%7))
				ph.Touch(uint64(i % 9))
			}
		}
		var buf bytes.Buffer
		if err := h.Report(1000).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(mk(), mk()) {
		t.Fatal("identical heat content serialized differently")
	}
}

// TestHeatSketchDecay: a hot key from a past burst ages out of the sketch
// once it stops being touched — counts halve every decayWindows cadence
// intervals and zeroed entries are evicted — so a stale flash crowd can
// never out-score the current hotspot.
func TestHeatSketchDecay(t *testing.T) {
	h := NewHeat(1, 100, 2) // cadence 100ns, default decay: halve every 4 windows
	ph := h.Partition(0)
	for i := 0; i < 10; i++ {
		ph.Touch(1) // the "flash crowd" key
	}
	// 8 idle windows pass (two half-lives): 10 -> 5 -> 2.
	ph.RecordQueue(850, 0)
	top := ph.TopKeys()
	if len(top) != 1 || top[0].Key != 1 || top[0].Count != 2 {
		t.Fatalf("after two half-lives: %+v, want key 1 count 2", top)
	}
	// Two more half-lives: 2 -> 1 -> 0, evicted.
	ph.RecordQueue(1650, 0)
	if top := ph.TopKeys(); len(top) != 0 {
		t.Fatalf("stale key survived decay: %+v", top)
	}
	// The current hotspot now owns the sketch with no inherited error.
	ph.Touch(9)
	ph.Touch(9)
	top = ph.TopKeys()
	if len(top) != 1 || top[0].Key != 9 || top[0].Count != 2 || top[0].Err != 0 {
		t.Fatalf("fresh hotspot = %+v, want key 9 count 2 err 0", top)
	}
}

// TestHeatSketchDecayDisabled: SetSketchDecay(0) restores the undecayed
// sketch for consumers that want all-time totals.
func TestHeatSketchDecayDisabled(t *testing.T) {
	h := NewHeat(1, 100, 2)
	h.SetSketchDecay(0)
	ph := h.Partition(0)
	for i := 0; i < 10; i++ {
		ph.Touch(1)
	}
	ph.RecordQueue(10_000, 0) // 100 idle windows
	top := ph.TopKeys()
	if len(top) != 1 || top[0].Count != 10 {
		t.Fatalf("decay disabled but counts changed: %+v", top)
	}
}

// TestHeatSubscribePoll: an incremental subscription returns each cadence
// sample exactly once, and two subscriptions keep independent cursors.
func TestHeatSubscribePoll(t *testing.T) {
	h := NewHeat(2, 100, 2)
	a, b := h.Subscribe(), h.Subscribe()
	h.Partition(0).RecordExec(10, 40)
	h.Partition(1).RecordExec(20, 80)

	r := a.Poll(100) // cuts interval [0,100) on both partitions
	if len(r.Partitions) != 2 {
		t.Fatalf("partitions = %d, want 2", len(r.Partitions))
	}
	if n := len(r.Partitions[0].Samples); n != 1 {
		t.Fatalf("first poll p0 samples = %d, want 1", n)
	}
	if got := r.Partitions[1].Samples[0].Executed; got != 1 {
		t.Fatalf("first poll p1 executed = %d, want 1", got)
	}

	h.Partition(0).RecordExec(150, 60)
	r = a.Poll(200) // only the new interval [100,200)
	if n := len(r.Partitions[0].Samples); n != 1 {
		t.Fatalf("second poll p0 samples = %d, want 1 (incremental)", n)
	}
	if r.Partitions[0].Samples[0].AtNS != 100 {
		t.Fatalf("second poll p0 sample at %d, want 100", r.Partitions[0].Samples[0].AtNS)
	}
	if n := len(a.Poll(200).Partitions[0].Samples); n != 0 {
		t.Fatalf("re-poll returned %d samples, want 0", n)
	}

	// The second subscription still sees everything from the start.
	r = b.Poll(200)
	if n := len(r.Partitions[0].Samples); n != 2 {
		t.Fatalf("independent sub p0 samples = %d, want 2", n)
	}

	var nilSub *HeatSub
	if rep := nilSub.Poll(0); len(rep.Partitions) != 0 {
		t.Fatal("nil subscription produced partitions")
	}
}

// TestHeatNilSafety: nil collectors are no-ops.
func TestHeatNilSafety(t *testing.T) {
	var h *Heat
	var ph *PartitionHeat
	ph.RecordExec(0, 1)
	ph.RecordQueue(0, 1)
	ph.Touch(1)
	if ph.TopKeys() != nil {
		t.Fatal("nil partition returned keys")
	}
	if h.Partition(0) != nil {
		t.Fatal("nil heat returned a partition")
	}
	if rep := h.Report(0); len(rep.Partitions) != 0 {
		t.Fatal("nil heat produced partitions")
	}
}
