package obs

import (
	"bytes"
	"testing"

	"heron/internal/sim"
)

// TestHeatCadenceRoll checks lazy rolling cuts one sample per cadence
// interval with the right aggregates, and Report flushes the tail.
func TestHeatCadenceRoll(t *testing.T) {
	h := NewHeat(1, 100, 0) // cadence 100ns
	ph := h.Partition(0)
	ph.RecordExec(10, 40)
	ph.RecordExec(20, 60)
	ph.RecordQueue(30, 7)
	ph.RecordExec(150, 100) // crosses into interval [100,200)
	rep := h.Report(300)

	p := rep.Partitions[0]
	if p.Executed != 3 {
		t.Fatalf("executed = %d, want 3", p.Executed)
	}
	if len(p.Samples) != 2 {
		t.Fatalf("samples = %d, want 2 (idle tail trimmed): %+v", len(p.Samples), p.Samples)
	}
	s0, s1 := p.Samples[0], p.Samples[1]
	if s0.AtNS != 0 || s0.Executed != 2 || s0.QueueMax != 7 || s0.MeanLatNS != 50 || s0.MaxLatNS != 60 {
		t.Fatalf("interval 0 = %+v", s0)
	}
	if s1.AtNS != 100 || s1.Executed != 1 || s1.MeanLatNS != 100 {
		t.Fatalf("interval 1 = %+v", s1)
	}
}

// TestHeatTopKSketch checks the space-saving sketch keeps the hot keys
// and bounds the error of displaced entries.
func TestHeatTopKSketch(t *testing.T) {
	h := NewHeat(1, 100, 2)
	ph := h.Partition(0)
	for i := 0; i < 10; i++ {
		ph.Touch(1)
	}
	for i := 0; i < 5; i++ {
		ph.Touch(2)
	}
	ph.Touch(3) // displaces nothing yet? k=2 full with {1,2}; 3 displaces the min (2:5)
	top := ph.TopKeys()
	if len(top) != 2 {
		t.Fatalf("top = %+v, want 2 entries", top)
	}
	if top[0].Key != 1 || top[0].Count != 10 || top[0].Err != 0 {
		t.Fatalf("hottest = %+v, want key 1 count 10", top[0])
	}
	// Key 3 inherited key 2's count as overestimate, with err bound 5.
	if top[1].Key != 3 || top[1].Count != 6 || top[1].Err != 5 {
		t.Fatalf("displaced entry = %+v, want key 3 count 6 err 5", top[1])
	}
}

// TestHeatReportDeterminism: identical recorded content serializes to
// identical bytes (partitions in index order, keys content-sorted).
func TestHeatReportDeterminism(t *testing.T) {
	mk := func() []byte {
		h := NewHeat(3, 100, 4)
		for part := 0; part < 3; part++ {
			ph := h.Partition(part)
			for i := 0; i < 50; i++ {
				ph.RecordExec(sim.Time(i*17), sim.Duration(i%7))
				ph.Touch(uint64(i % 9))
			}
		}
		var buf bytes.Buffer
		if err := h.Report(1000).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(mk(), mk()) {
		t.Fatal("identical heat content serialized differently")
	}
}

// TestHeatNilSafety: nil collectors are no-ops.
func TestHeatNilSafety(t *testing.T) {
	var h *Heat
	var ph *PartitionHeat
	ph.RecordExec(0, 1)
	ph.RecordQueue(0, 1)
	ph.Touch(1)
	if ph.TopKeys() != nil {
		t.Fatal("nil partition returned keys")
	}
	if h.Partition(0) != nil {
		t.Fatal("nil heat returned a partition")
	}
	if rep := h.Report(0); len(rep.Partitions) != 0 {
		t.Fatal("nil heat produced partitions")
	}
}
