package obs

import (
	"fmt"

	"heron/internal/sim"
)

// RecordDomainStats routes the parallel simulation kernel's own
// counters — conservative windows (barrier synchronizations), late
// cross-domain events, and per-domain event counts — through the
// metrics registry, so the kernel is observable like every other
// subsystem. Call it after a run completes (the kernel counters are
// read from the coordinating thread). A nil registry or nil domains is
// a no-op.
func RecordDomainStats(m *Metrics, d *sim.Domains) {
	if m == nil || d == nil {
		return
	}
	m.Gauge("sim/domains").Set(int64(d.Len()))
	m.Gauge("sim/windows").Set(int64(d.Windows()))
	m.Gauge("sim/late_cross_events").Set(int64(d.LateCrossEvents()))
	m.Gauge("sim/events").Set(int64(d.EventCount()))
	for i := 0; i < d.Len(); i++ {
		m.Gauge(fmt.Sprintf("sim/domain%d/events", i)).Set(int64(d.Domain(i).EventCount()))
	}
}
