package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"heron/internal/sim"
)

// fakeClock is a manually advanced Clock for tests.
type fakeClock struct{ t sim.Time }

func (c *fakeClock) Now() sim.Time { return c.t }

// TestNilSafety exercises every exported method on nil receivers; any
// panic fails the test.
func TestNilSafety(t *testing.T) {
	var o *Observer
	if New(nil, nil) != nil {
		t.Fatal("New(nil, nil) should return nil")
	}
	if o.Tracer() != nil || o.Metrics() != nil || o.Scope("x") != nil {
		t.Fatal("nil observer accessors should return nil")
	}
	tk := o.Track("p", "t", nil)
	if tk != nil {
		t.Fatal("nil observer Track should return nil")
	}
	sp := tk.Begin("s")
	sp.Arg("k", 1).End()
	sp.End() // double-end on nil
	tk.BeginAsync("c", "a").End()
	tk.Instant("i", nil)
	tk.Count("q", 1)

	c := o.Counter("c")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter value should be 0")
	}
	g := o.Gauge("g")
	g.Set(5)
	g.Add(-2)
	if g.Value() != 0 {
		t.Fatal("nil gauge value should be 0")
	}
	h := o.Histogram("h")
	h.Observe(time5())
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram should report zeros")
	}

	var tr *Tracer
	if tr.Track("p", "t", nil) != nil || tr.Events() != nil {
		t.Fatal("nil tracer accessors should return nil")
	}
	if !strings.Contains(tr.Summary(), "no spans") {
		t.Fatal("nil tracer Summary should say no spans")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("nil tracer WriteJSON: %v", err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("nil tracer JSON invalid: %v", err)
	}

	var m *Metrics
	if m.Counter("x") != nil || m.Gauge("x") != nil || m.Histogram("x") != nil {
		t.Fatal("nil metrics accessors should return nil")
	}
	snap := m.Snapshot(0)
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil metrics snapshot should be empty")
	}
	_ = snap.Format()
}

func time5() sim.Duration { return 5 * sim.Microsecond }

func TestCounterGauge(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("reqs")
	c.Inc()
	c.Add(4)
	if got := m.Counter("reqs").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := m.Gauge("depth")
	g.Set(10)
	g.Add(-3)
	if got := m.Gauge("depth").Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("lat")
	// 100 samples: 1us, 2us, ..., 100us.
	for i := 1; i <= 100; i++ {
		h.Observe(sim.Duration(i) * sim.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if h.Max() != 100*sim.Microsecond {
		t.Fatalf("max = %v, want 100us", h.Max())
	}
	wantMean := sim.Duration(50500) * sim.Nanosecond // (1+...+100)/100 us
	if h.Mean() != wantMean {
		t.Fatalf("mean = %v, want %v", h.Mean(), wantMean)
	}
	// Log buckets bound quantiles from above: p50 (rank 50 = 50000ns)
	// lands in the [2^15, 2^16) ns bucket, reported as its upper bound
	// 65535ns; p99 clamps to the observed max.
	p50 := h.Quantile(0.50)
	if p50 < 50*sim.Microsecond || p50 >= 66*sim.Microsecond {
		t.Fatalf("p50 = %v, want in [50us, 66us)", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 99*sim.Microsecond || p99 > 100*sim.Microsecond {
		t.Fatalf("p99 = %v, want in [99us, 100us]", p99)
	}
	if q := h.Quantile(1.0); q != 100*sim.Microsecond {
		t.Fatalf("p100 = %v, want 100us (clamped to max)", q)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("lat")
	h.Observe(7 * sim.Microsecond)
	// With one sample, every quantile is that sample (clamped to min=max).
	for _, q := range []float64{0.01, 0.5, 0.99, 1.0} {
		if got := h.Quantile(q); got != 7*sim.Microsecond {
			t.Fatalf("Quantile(%v) = %v, want 7us", q, got)
		}
	}
}

func TestScopePrefixing(t *testing.T) {
	tr := NewTracer()
	m := NewMetrics()
	o := New(tr, m)
	s := o.Scope("fig6").Scope("w4")
	clk := &fakeClock{}
	tk := s.Track("node1", "exec", clk)
	if tk.process != "fig6/w4/node1" {
		t.Fatalf("track process = %q, want fig6/w4/node1", tk.process)
	}
	s.Counter("reqs").Inc()
	snap := m.Snapshot(0)
	if len(snap.Counters) != 1 || snap.Counters[0].Name != "fig6/w4/reqs" {
		t.Fatalf("counter names = %+v, want fig6/w4/reqs", snap.Counters)
	}
}

func TestPidTidAssignment(t *testing.T) {
	tr := NewTracer()
	clk := &fakeClock{}
	a1 := tr.Track("nodeA", "exec", clk)
	a2 := tr.Track("nodeA", "ctl", clk)
	b1 := tr.Track("nodeB", "exec", clk)
	if a1.pid != 1 || a2.pid != 1 || b1.pid != 2 {
		t.Fatalf("pids = %d,%d,%d, want 1,1,2", a1.pid, a2.pid, b1.pid)
	}
	if a1.tid != 1 || a2.tid != 2 || b1.tid != 1 {
		t.Fatalf("tids = %d,%d,%d, want 1,2,1", a1.tid, a2.tid, b1.tid)
	}
	if again := tr.Track("nodeA", "exec", clk); again != a1 {
		t.Fatal("re-registering a track should return the same instance")
	}
}

// buildTrace records a small fixed scenario and returns the JSON bytes.
func buildTrace(t *testing.T) []byte {
	t.Helper()
	tr := NewTracer()
	clk := &fakeClock{}
	o := New(tr, NewMetrics())
	tk := o.Track("node1", "exec", clk)
	nic := o.Track("node1", "nic", clk)

	outer := tk.Begin("request")
	clk.t = 1000
	inner := tk.Begin("execute").Arg("keys", 3)
	rd := nic.BeginAsync("rdma", "read")
	clk.t = 2500
	rd.Arg("bytes", 64).End()
	clk.t = 3000
	inner.End()
	tk.Instant("reply", map[string]any{"msg": 7})
	nic.Count("queue_depth", 2)
	clk.t = 4000
	outer.End()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

func TestWriteJSONValidAndDeterministic(t *testing.T) {
	b1 := buildTrace(t)
	b2 := buildTrace(t)
	if !bytes.Equal(b1, b2) {
		t.Fatal("identical scenarios should produce byte-identical JSON")
	}
	var parsed struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b1, &parsed); err != nil {
		t.Fatalf("trace JSON invalid: %v\n%s", err, b1)
	}
	phases := map[string]int{}
	for _, ev := range parsed.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
	}
	// 2 metadata names for process + 2 threads, 2 complete spans, 1 async
	// pair, 1 instant, 1 counter sample.
	if phases["M"] != 3 || phases["X"] != 2 || phases["b"] != 1 || phases["e"] != 1 || phases["i"] != 1 || phases["C"] != 1 {
		t.Fatalf("phase counts = %v", phases)
	}
	// Events must be sorted by ts.
	last := -1.0
	for _, ev := range parsed.TraceEvents {
		if ev["ph"] == "M" {
			continue
		}
		ts, _ := ev["ts"].(float64)
		if ts < last {
			t.Fatalf("events out of order: %v after %v", ts, last)
		}
		last = ts
	}
}

func TestSummary(t *testing.T) {
	tr := NewTracer()
	clk := &fakeClock{}
	tk := tr.Track("node1", "exec", clk)
	for i := 0; i < 3; i++ {
		sp := tk.Begin("execute")
		clk.t += 1000
		sp.End()
	}
	s := tr.Summary()
	if !strings.Contains(s, "node1 execute") || !strings.Contains(s, "3") {
		t.Fatalf("summary missing span line:\n%s", s)
	}
}

func TestSnapshotFormat(t *testing.T) {
	m := NewMetrics()
	m.Counter("b").Inc()
	m.Counter("a").Add(2)
	m.Gauge("g").Set(-1)
	m.Histogram("h").Observe(3 * sim.Millisecond)
	snap := m.Snapshot(sim.Time(5 * sim.Second))
	if len(snap.Counters) != 2 || snap.Counters[0].Name != "a" || snap.Counters[1].Name != "b" {
		t.Fatalf("counters not name-sorted: %+v", snap.Counters)
	}
	out := snap.Format()
	for _, want := range []string{"counters:", "gauges:", "histograms:", "a", "h"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-marshalable: %v", err)
	}
}
