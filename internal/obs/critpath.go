package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"heron/internal/sim"
)

// Causal critical-path engine. Instrumented subsystems record, per
// request, timestamped marks (submit, delivered, done, complete) and
// named leaf intervals (nic_wait, addr_resolve, coordination waits,
// app_execute, ...) keyed by the request's multicast id — the causal
// edge that links the client, the ordering layer, and every involved
// replica across simulation domains. Profile then reassembles each
// request's interval set, walks it backward from completion, and
// attributes every nanosecond of end-to-end latency to exactly one
// segment; residual gaps no interval explains go to "other", so the
// per-request segment sum always equals the measured end-to-end latency.
//
// Recording is sharded per simulation domain: a CPShard is only ever
// touched by its owning domain's thread, and Profile merges shards in a
// content-determined order, so the aggregated profile is byte-identical
// across same-seed runs regardless of domain count or thread timing.

// ReqID identifies one request across nodes: the submitting client's
// fabric node and its multicast sequence number (multicast.MsgID, kept
// as plain integers so obs stays dependency-free).
type ReqID struct {
	Node uint64 `json:"node"`
	Seq  uint64 `json:"seq"`
}

// Segment names one attributed slice of a request's lifetime. Mark
// segments (submit..complete) carry instants; the rest are leaf
// intervals recorded by instrumented code, except ordering, reply and
// other, which Profile synthesizes from the marks.
type Segment uint8

const (
	// Marks (instants, not intervals).
	SegSubmit    Segment = iota // client handed the request to the multicast
	SegSent                     // multicast posting started (= submit unless queued first)
	SegDelivered                // an involved replica received the ordered request
	SegDone                     // an involved replica finished executing (before replying)
	SegComplete                 // client collected the last needed response

	// Leaf intervals recorded by instrumented code.
	SegPumpWait      // open-loop backlog: generated arrival waiting in a pump
	SegCoord2Wait    // phase-2 coordination write + quorum wait
	SegAddrResolve   // batched object-address quorum round
	SegReadPost      // posting the pipelined one-sided READs
	SegNicWait       // completion-queue wait for the posted READs
	SegVersionSelect // dual-version decode and selection
	SegLocalRead     // local read-set resolution
	SegAppExecute    // application execute (compute + local gets)
	SegWriteApply    // applying the write set to the local store
	SegCoord4Wait    // phase-4 coordination write + quorum wait (incl. cut-off delay)
	SegDurableGate   // wait on the durable-persistence gate
	SegLeaseWait     // reply deferred behind the partition lease gate

	// Synthesized by Profile.
	SegOrdering // sent (or submit) -> earliest delivery: the atomic multicast
	SegReply    // latest done -> complete: response network + client collect
	SegOther    // residual end-to-end time no interval explains

	segCount
)

var segNames = [segCount]string{
	"submit", "sent", "delivered", "done", "complete",
	"pump_wait", "coord2_wait", "addr_resolve", "read_post", "nic_wait",
	"version_select", "local_read", "app_execute", "write_apply",
	"coord4_wait", "durable_gate", "lease_wait",
	"ordering", "reply", "other",
}

// String names the segment for reports.
func (s Segment) String() string {
	if int(s) < len(segNames) {
		return segNames[s]
	}
	return fmt.Sprintf("segment(%d)", int(s))
}

// cpRecord is one recorded mark (start == end) or interval.
type cpRecord struct {
	id    ReqID
	seg   Segment
	start sim.Time
	end   sim.Time
}

// CPShard is one domain's append-only record buffer. It must only be
// used from its owning domain's thread (the per-domain scheduler runs
// one event at a time, so instrumented code needs no locking). All
// methods are no-ops on a nil shard.
type CPShard struct {
	recs []cpRecord
}

// Mark records an instant for the request.
func (s *CPShard) Mark(id ReqID, seg Segment, at sim.Time) {
	if s == nil {
		return
	}
	s.recs = append(s.recs, cpRecord{id: id, seg: seg, start: at, end: at})
}

// Record records one leaf interval. Empty or inverted intervals are
// dropped: they cannot carry latency.
func (s *CPShard) Record(id ReqID, seg Segment, start, end sim.Time) {
	if s == nil || end <= start {
		return
	}
	s.recs = append(s.recs, cpRecord{id: id, seg: seg, start: start, end: end})
}

// Len returns the number of records in the shard.
func (s *CPShard) Len() int {
	if s == nil {
		return 0
	}
	return len(s.recs)
}

// CritPath owns the per-domain shards of one run.
type CritPath struct {
	shards []*CPShard
}

// NewCritPath creates an engine with one shard per simulation domain.
func NewCritPath(domains int) *CritPath {
	if domains < 1 {
		domains = 1
	}
	c := &CritPath{shards: make([]*CPShard, domains)}
	for i := range c.shards {
		c.shards[i] = &CPShard{}
	}
	return c
}

// Shard returns the shard for a domain (clamped into range; nil-safe).
// Resolve shards at wiring time, before domain threads start.
func (c *CritPath) Shard(domain int) *CPShard {
	if c == nil {
		return nil
	}
	if domain < 0 || domain >= len(c.shards) {
		domain = 0
	}
	return c.shards[domain]
}

// SegmentStat aggregates one segment's contribution.
type SegmentStat struct {
	Name    string  `json:"name"`
	TotalNS int64   `json:"total_ns"`
	MeanNS  int64   `json:"mean_ns"`
	Count   int     `json:"count"` // requests where the segment contributed
	Pct     float64 `json:"pct"`   // share of total attributed latency
}

// CPOutlier is one slowest-N request with its own attribution.
type CPOutlier struct {
	ID       ReqID         `json:"id"`
	E2ENS    int64         `json:"e2e_ns"`
	Segments []SegmentStat `json:"segments"`
}

// CPProfile is the deterministic latency-attribution profile of a run.
type CPProfile struct {
	Requests     int           `json:"requests"`   // requests with a submit mark
	Attributed   int           `json:"attributed"` // requests with submit and complete
	TotalE2ENS   int64         `json:"total_e2e_ns"`
	MeanE2ENS    int64         `json:"mean_e2e_ns"`
	SegmentSumNS int64         `json:"segment_sum_ns"` // == TotalE2ENS by construction
	Segments     []SegmentStat `json:"segments"`
	Slowest      []CPOutlier   `json:"slowest,omitempty"`
}

// cpInterval is one clipped interval during the walk.
type cpInterval struct {
	seg        Segment
	start, end sim.Time
}

// Profile merges all shards and attributes each request's end-to-end
// latency across segments via a backward critical-path walk, returning
// the aggregate plus the slowestN slowest requests with their own
// breakdowns. The result depends only on recorded content — never on
// shard layout or thread timing — so same-seed runs produce
// byte-identical output under any domain count.
func (c *CritPath) Profile(slowestN int) *CPProfile {
	p := &CPProfile{}
	if c == nil {
		return p
	}
	byID := make(map[ReqID][]cpRecord)
	var ids []ReqID
	for _, sh := range c.shards {
		for _, r := range sh.recs {
			if _, ok := byID[r.id]; !ok {
				ids = append(ids, r.id)
			}
			byID[r.id] = append(byID[r.id], r)
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Node != ids[j].Node {
			return ids[i].Node < ids[j].Node
		}
		return ids[i].Seq < ids[j].Seq
	})

	type reqAttr struct {
		id     ReqID
		e2e    int64
		perSeg [segCount]int64
	}
	var attrs []reqAttr
	var totSeg [segCount]int64
	var totCount [segCount]int

	for _, id := range ids {
		recs := byID[id]
		// Resolve marks: earliest submit/sent/delivered, latest done/complete.
		var submit, sent, delivered, done, complete sim.Time
		var haveSubmit, haveSent, haveDelivered, haveDone, haveComplete bool
		for _, r := range recs {
			switch r.seg {
			case SegSubmit:
				if !haveSubmit || r.start < submit {
					submit, haveSubmit = r.start, true
				}
			case SegSent:
				if !haveSent || r.start < sent {
					sent, haveSent = r.start, true
				}
			case SegDelivered:
				if !haveDelivered || r.start < delivered {
					delivered, haveDelivered = r.start, true
				}
			case SegDone:
				if !haveDone || r.start > done {
					done, haveDone = r.start, true
				}
			case SegComplete:
				if !haveComplete || r.start > complete {
					complete, haveComplete = r.start, true
				}
			}
		}
		if !haveSubmit {
			continue
		}
		p.Requests++
		if !haveComplete || complete <= submit {
			continue
		}
		p.Attributed++

		// Build the clipped interval set: recorded leaves plus the
		// synthesized ordering and reply edges.
		var ivs []cpInterval
		add := func(seg Segment, start, end sim.Time) {
			if start < submit {
				start = submit
			}
			if end > complete {
				end = complete
			}
			if end > start {
				ivs = append(ivs, cpInterval{seg: seg, start: start, end: end})
			}
		}
		for _, r := range recs {
			if r.seg >= SegPumpWait && r.seg <= SegLeaseWait {
				add(r.seg, r.start, r.end)
			}
		}
		if haveDelivered {
			from := submit
			if haveSent {
				from = sent
			}
			add(SegOrdering, from, delivered)
		}
		if haveDone {
			add(SegReply, done, complete)
		}

		// Backward critical-path walk: from complete toward submit, at
		// every frontier pick the interval that explains the most recent
		// unattributed time (largest capped end, then earliest start,
		// then lowest segment id — all content-determined).
		a := reqAttr{id: id, e2e: int64(complete - submit)}
		frontier := complete
		for frontier > submit {
			best := -1
			var bestCap, bestStart sim.Time
			var bestSeg Segment
			for i, iv := range ivs {
				if iv.start >= frontier {
					continue
				}
				capped := iv.end
				if capped > frontier {
					capped = frontier
				}
				if best == -1 || capped > bestCap ||
					(capped == bestCap && (iv.start < bestStart ||
						(iv.start == bestStart && iv.seg < bestSeg))) {
					best, bestCap, bestStart, bestSeg = i, capped, iv.start, iv.seg
				}
			}
			if best == -1 {
				a.perSeg[SegOther] += int64(frontier - submit)
				break
			}
			if bestCap < frontier {
				a.perSeg[SegOther] += int64(frontier - bestCap)
			}
			a.perSeg[bestSeg] += int64(bestCap - bestStart)
			frontier = bestStart
		}

		p.TotalE2ENS += a.e2e
		for seg, ns := range a.perSeg {
			if ns > 0 {
				totSeg[seg] += ns
				totCount[seg]++
			}
		}
		attrs = append(attrs, a)
	}

	if p.Attributed > 0 {
		p.MeanE2ENS = p.TotalE2ENS / int64(p.Attributed)
	}
	mkStats := func(perSeg [segCount]int64, counts [segCount]int, total int64) []SegmentStat {
		var out []SegmentStat
		for seg := Segment(0); seg < segCount; seg++ {
			ns := perSeg[seg]
			if ns == 0 {
				continue
			}
			st := SegmentStat{Name: seg.String(), TotalNS: ns, Count: counts[seg]}
			if counts[seg] > 0 {
				st.MeanNS = ns / int64(counts[seg])
			}
			if total > 0 {
				st.Pct = float64(ns) / float64(total) * 100
			}
			out = append(out, st)
		}
		sort.SliceStable(out, func(i, j int) bool {
			if out[i].TotalNS != out[j].TotalNS {
				return out[i].TotalNS > out[j].TotalNS
			}
			return out[i].Name < out[j].Name
		})
		return out
	}
	p.Segments = mkStats(totSeg, totCount, p.TotalE2ENS)
	for _, st := range p.Segments {
		p.SegmentSumNS += st.TotalNS
	}

	if slowestN > 0 && len(attrs) > 0 {
		sort.SliceStable(attrs, func(i, j int) bool {
			if attrs[i].e2e != attrs[j].e2e {
				return attrs[i].e2e > attrs[j].e2e
			}
			if attrs[i].id.Node != attrs[j].id.Node {
				return attrs[i].id.Node < attrs[j].id.Node
			}
			return attrs[i].id.Seq < attrs[j].id.Seq
		})
		if slowestN > len(attrs) {
			slowestN = len(attrs)
		}
		for _, a := range attrs[:slowestN] {
			var counts [segCount]int
			for seg, ns := range a.perSeg {
				if ns > 0 {
					counts[seg] = 1
				}
			}
			p.Slowest = append(p.Slowest, CPOutlier{
				ID:       a.id,
				E2ENS:    a.e2e,
				Segments: mkStats(a.perSeg, counts, a.e2e),
			})
		}
	}
	return p
}

// WriteJSON writes the profile as deterministic indented JSON.
func (p *CPProfile) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Format renders the profile as text tables.
func (p *CPProfile) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical-path latency attribution: %d requests, %d attributed\n",
		p.Requests, p.Attributed)
	if p.Attributed == 0 {
		b.WriteString("(no attributable requests: need submit and complete marks)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "end-to-end: total %s  mean %s  (segment sum %s)\n",
		fmtDur(sim.Duration(p.TotalE2ENS)), fmtDur(sim.Duration(p.MeanE2ENS)),
		fmtDur(sim.Duration(p.SegmentSumNS)))
	fmt.Fprintf(&b, "%-16s %12s %12s %8s %7s\n", "segment", "total", "mean", "count", "pct")
	for _, st := range p.Segments {
		fmt.Fprintf(&b, "%-16s %12s %12s %8d %6.1f%%\n",
			st.Name, fmtDur(sim.Duration(st.TotalNS)), fmtDur(sim.Duration(st.MeanNS)),
			st.Count, st.Pct)
	}
	if len(p.Slowest) > 0 {
		fmt.Fprintf(&b, "\nslowest %d requests:\n", len(p.Slowest))
		for _, o := range p.Slowest {
			fmt.Fprintf(&b, "  node%d/seq%d  e2e %s:", o.ID.Node, o.ID.Seq, fmtDur(sim.Duration(o.E2ENS)))
			for _, st := range o.Segments {
				fmt.Fprintf(&b, "  %s %s (%.0f%%)", st.Name, fmtDur(sim.Duration(st.TotalNS)), st.Pct)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
