package obs

import "heron/internal/sim"

// Tracer collects spans and instants across all tracks of one run. It is
// not safe for concurrent use from OS threads; the simulation kernel runs
// exactly one process at a time, which is the intended usage.
type Tracer struct {
	tracks []*Track
	byKey  map[trackKey]*Track
	// pids maps a process name to its pid; tids counts threads per pid.
	pids map[string]int
	tids map[int]int

	events []Event
	nextID uint64

	// agg accumulates per-(process, span name) totals for the flame
	// summary, filled in as spans end.
	agg     map[aggKey]*aggVal
	aggKeys []aggKey
}

type trackKey struct{ process, thread string }

type aggKey struct{ process, name string }

type aggVal struct {
	count int
	total sim.Duration
	max   sim.Duration
}

// Event phases, mirroring the Chrome trace_event phase letters.
const (
	PhaseComplete   = 'X' // span with ts + dur
	PhaseAsyncBegin = 'b' // async span begin (paired by ID)
	PhaseAsyncEnd   = 'e' // async span end
	PhaseInstant    = 'i'
	PhaseCounter    = 'C'
)

// Event is one recorded trace event.
type Event struct {
	Phase byte
	Name  string
	Cat   string
	Ts    sim.Time
	Dur   sim.Duration
	Pid   int
	Tid   int
	ID    uint64 // nonzero for async pairs
	Args  map[string]any
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{
		byKey: make(map[trackKey]*Track),
		pids:  make(map[string]int),
		tids:  make(map[int]int),
		agg:   make(map[aggKey]*aggVal),
	}
}

// Track returns (registering on first use) the track for a (process,
// thread) pair. Pids and tids are assigned in first-seen order, which is
// deterministic under the simulation.
func (t *Tracer) Track(process, thread string, clock Clock) *Track {
	if t == nil {
		return nil
	}
	k := trackKey{process, thread}
	if tk, ok := t.byKey[k]; ok {
		return tk
	}
	pid, ok := t.pids[process]
	if !ok {
		pid = len(t.pids) + 1
		t.pids[process] = pid
	}
	t.tids[pid]++
	tk := &Track{t: t, clock: clock, process: process, thread: thread, pid: pid, tid: t.tids[pid]}
	t.byKey[k] = tk
	t.tracks = append(t.tracks, tk)
	return tk
}

// Events returns the recorded events in append order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// record appends one event.
func (t *Tracer) record(ev Event) { t.events = append(t.events, ev) }

// aggregate folds one finished span into the flame summary.
func (t *Tracer) aggregate(process, name string, d sim.Duration) {
	k := aggKey{process, name}
	v := t.agg[k]
	if v == nil {
		v = &aggVal{}
		t.agg[k] = v
		t.aggKeys = append(t.aggKeys, k)
	}
	v.count++
	v.total += d
	if d > v.max {
		v.max = d
	}
}

// Track is one timeline: a (process, thread) pair in the Chrome trace
// model. Heron maps fabric nodes to processes and the node's simulation
// processes (NIC, executor, control, multicast) to threads.
type Track struct {
	t       *Tracer
	clock   Clock
	process string
	thread  string
	pid     int
	tid     int
}

// Begin opens a synchronous nested span on the track. Synchronous spans
// must strictly nest per track (end before their parent), which holds
// when a track is only used from its own simulation process.
func (tk *Track) Begin(name string) *Span {
	if tk == nil {
		return nil
	}
	return &Span{tk: tk, name: name, start: tk.clock.Now()}
}

// BeginAsync opens an asynchronous span: it may overlap other spans on
// the track and may be ended from a different simulation process (e.g. a
// posted RDMA verb ending at its completion event). cat groups related
// async spans in the viewer.
func (tk *Track) BeginAsync(cat, name string) *Span {
	if tk == nil {
		return nil
	}
	tk.t.nextID++
	sp := &Span{tk: tk, name: name, cat: cat, id: tk.t.nextID, start: tk.clock.Now()}
	tk.t.record(Event{Phase: PhaseAsyncBegin, Name: name, Cat: cat, Ts: sp.start, Pid: tk.pid, Tid: tk.tid, ID: sp.id})
	return sp
}

// Instant records a zero-duration marker event.
func (tk *Track) Instant(name string, args map[string]any) {
	if tk == nil {
		return
	}
	tk.t.record(Event{Phase: PhaseInstant, Name: name, Ts: tk.clock.Now(), Pid: tk.pid, Tid: tk.tid, Args: args})
}

// Count records a counter sample, rendered as a time series in the
// viewer (e.g. queue depth over virtual time).
func (tk *Track) Count(name string, value float64) {
	if tk == nil {
		return
	}
	tk.t.record(Event{Phase: PhaseCounter, Name: name, Ts: tk.clock.Now(), Pid: tk.pid, Tid: tk.tid,
		Args: map[string]any{"value": value}})
}

// Span is one open span. End it exactly once; a nil span ignores all
// calls.
type Span struct {
	tk    *Track
	name  string
	cat   string
	start sim.Time
	id    uint64
	args  map[string]any
	ended bool
}

// Arg attaches a key/value argument shown in the viewer. It returns the
// span for chaining.
func (sp *Span) Arg(key string, v any) *Span {
	if sp == nil {
		return nil
	}
	if sp.args == nil {
		sp.args = make(map[string]any, 4)
	}
	sp.args[key] = v
	return sp
}

// End closes the span at the current virtual time.
func (sp *Span) End() {
	if sp == nil || sp.ended {
		return
	}
	sp.ended = true
	tk := sp.tk
	now := tk.clock.Now()
	dur := sim.Duration(now - sp.start)
	if sp.id != 0 {
		tk.t.record(Event{Phase: PhaseAsyncEnd, Name: sp.name, Cat: sp.cat, Ts: now, Pid: tk.pid, Tid: tk.tid, ID: sp.id, Args: sp.args})
	} else {
		tk.t.record(Event{Phase: PhaseComplete, Name: sp.name, Ts: sp.start, Dur: dur, Pid: tk.pid, Tid: tk.tid, Args: sp.args})
	}
	tk.t.aggregate(tk.process, sp.name, dur)
}
