package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"heron/internal/sim"
)

// Metrics is a registry of named counters, gauges and latency histograms.
// Instruments are deduplicated by name, so independent subsystems (or all
// replicas of a deployment) naming the same instrument share it.
// Snapshots iterate names in sorted order, keeping output deterministic.
type Metrics struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating on first use) the named counter. Resolve
// once at wiring time on hot paths; the per-event Inc/Add is then a
// single nil test plus an integer add.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	g, ok := m.gauges[name]
	if !ok {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use) the named histogram.
func (m *Metrics) Histogram(name string) *Histogram {
	if m == nil {
		return nil
	}
	h, ok := m.hists[name]
	if !ok {
		h = &Histogram{}
		m.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing count.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a point-in-time signed value.
type Gauge struct{ v int64 }

// Set overwrites the value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v = v
	}
}

// Add adjusts the value by d.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v += d
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram accumulates durations in logarithmic (power-of-two) buckets:
// bucket i holds samples in [2^(i-1), 2^i) nanoseconds, bucket 0 holds
// zero. Quantiles use the nearest-rank rule over the buckets and report
// the bucket's upper bound, clamped to the observed maximum, so p99 is
// never under-reported by more than one bucket's resolution.
type Histogram struct {
	count   uint64
	sum     int64
	max     int64
	min     int64
	buckets [65]uint64
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d sim.Duration) {
	if h == nil {
		return
	}
	v := int64(d)
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bits.Len64(uint64(v))]++
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Mean returns the average duration.
func (h *Histogram) Mean() sim.Duration {
	if h == nil || h.count == 0 {
		return 0
	}
	return sim.Duration(h.sum / int64(h.count))
}

// Max returns the largest observed duration.
func (h *Histogram) Max() sim.Duration {
	if h == nil {
		return 0
	}
	return sim.Duration(h.max)
}

// Quantile returns the q-th quantile (0 < q <= 1) by nearest rank over
// the log buckets.
func (h *Histogram) Quantile(q float64) sim.Duration {
	if h == nil || h.count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.count))
	if float64(rank) < q*float64(h.count) {
		rank++ // ceil
	}
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		if cum >= rank {
			if i == 0 {
				return 0
			}
			upper := int64(1)<<uint(i) - 1
			if upper > h.max {
				upper = h.max
			}
			if upper < h.min {
				upper = h.min
			}
			return sim.Duration(upper)
		}
	}
	return sim.Duration(h.max)
}

// Snapshot is the state of every instrument at one virtual instant.
type Snapshot struct {
	At         sim.Time        `json:"at_ns"`
	Counters   []CounterSnap   `json:"counters,omitempty"`
	Gauges     []GaugeSnap     `json:"gauges,omitempty"`
	Histograms []HistogramSnap `json:"histograms,omitempty"`
}

// CounterSnap is one counter's snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeSnap is one gauge's snapshot.
type GaugeSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramSnap is one histogram's snapshot with nearest-rank quantiles.
type HistogramSnap struct {
	Name  string       `json:"name"`
	Count uint64       `json:"count"`
	Mean  sim.Duration `json:"mean_ns"`
	P50   sim.Duration `json:"p50_ns"`
	P95   sim.Duration `json:"p95_ns"`
	P99   sim.Duration `json:"p99_ns"`
	Max   sim.Duration `json:"max_ns"`
}

// Snapshot captures every instrument, sorted by name. at stamps the
// virtual instant of the capture (pass 0 when not meaningful).
func (m *Metrics) Snapshot(at sim.Time) *Snapshot {
	s := &Snapshot{At: at}
	if m == nil {
		return s
	}
	for _, name := range sortedKeys(m.counters) {
		s.Counters = append(s.Counters, CounterSnap{Name: name, Value: m.counters[name].v})
	}
	for _, name := range sortedKeys(m.gauges) {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Value: m.gauges[name].v})
	}
	for _, name := range sortedKeys(m.hists) {
		h := m.hists[name]
		s.Histograms = append(s.Histograms, HistogramSnap{
			Name: name, Count: h.count, Mean: h.Mean(),
			P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99), Max: h.Max(),
		})
	}
	return s
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Format renders the snapshot as aligned text tables.
func (s *Snapshot) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "metrics snapshot at t=%s\n", fmtDur(sim.Duration(s.At)))
	if len(s.Counters) > 0 {
		b.WriteString("\ncounters:\n")
		for _, c := range s.Counters {
			fmt.Fprintf(&b, "  %-56s %12d\n", c.Name, c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("\ngauges:\n")
		for _, g := range s.Gauges {
			fmt.Fprintf(&b, "  %-56s %12d\n", g.Name, g.Value)
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("\nhistograms:\n")
		fmt.Fprintf(&b, "  %-56s %8s  %10s  %10s  %10s  %10s  %10s\n",
			"name", "count", "mean", "p50", "p95", "p99", "max")
		for _, h := range s.Histograms {
			fmt.Fprintf(&b, "  %-56s %8d  %10s  %10s  %10s  %10s  %10s\n",
				h.Name, h.Count, fmtDur(h.Mean), fmtDur(h.P50), fmtDur(h.P95), fmtDur(h.P99), fmtDur(h.Max))
		}
	}
	return b.String()
}
