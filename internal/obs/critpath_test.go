package obs

import (
	"bytes"
	"testing"

	"heron/internal/sim"
)

// TestCritPathWalkAttribution pins the walk's core invariant: every
// nanosecond between submit and complete is attributed to exactly one
// segment, with residual gaps going to "other".
func TestCritPathWalkAttribution(t *testing.T) {
	cp := NewCritPath(1)
	sh := cp.Shard(0)
	id := ReqID{Node: 1, Seq: 1}

	// submit=0, sent=10, delivered=100, app_execute=[100,140],
	// done=150, complete=170. Expected: pump_wait? none; ordering
	// [10,100]=90, app_execute [100,140]=40, reply [150,170]=20, other
	// covers [0,10) and [140,150) = 20.
	sh.Mark(id, SegSubmit, 0)
	sh.Mark(id, SegSent, 10)
	sh.Mark(id, SegDelivered, 100)
	sh.Record(id, SegAppExecute, 100, 140)
	sh.Mark(id, SegDone, 150)
	sh.Mark(id, SegComplete, 170)

	p := cp.Profile(0)
	if p.Requests != 1 || p.Attributed != 1 {
		t.Fatalf("requests=%d attributed=%d, want 1/1", p.Requests, p.Attributed)
	}
	if p.TotalE2ENS != 170 {
		t.Fatalf("e2e = %d, want 170", p.TotalE2ENS)
	}
	if p.SegmentSumNS != p.TotalE2ENS {
		t.Fatalf("segment sum %d != e2e %d", p.SegmentSumNS, p.TotalE2ENS)
	}
	want := map[string]int64{"ordering": 90, "app_execute": 40, "reply": 20, "other": 20}
	got := map[string]int64{}
	for _, s := range p.Segments {
		got[s.Name] = s.TotalNS
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Fatalf("segment %s = %d, want %d (all: %v)", name, got[name], ns, got)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("unexpected segments: %v", got)
	}
}

// TestCritPathOverlapPrefersCritical checks that overlapping intervals
// attribute each instant once: the backward walk picks the interval
// reaching furthest toward completion.
func TestCritPathOverlapPrefersCritical(t *testing.T) {
	cp := NewCritPath(1)
	sh := cp.Shard(0)
	id := ReqID{Node: 1, Seq: 2}
	sh.Mark(id, SegSubmit, 0)
	sh.Mark(id, SegComplete, 100)
	// nic_wait [0,80] overlaps addr_resolve [0,50]: the walk must charge
	// [50,80]... actually all of [0,80] to nic_wait (it ends later), then
	// nothing to addr_resolve, and [80,100] to other.
	sh.Record(id, SegNicWait, 0, 80)
	sh.Record(id, SegAddrResolve, 0, 50)

	p := cp.Profile(0)
	got := map[string]int64{}
	for _, s := range p.Segments {
		got[s.Name] = s.TotalNS
	}
	if got["nic_wait"] != 80 || got["other"] != 20 || got["addr_resolve"] != 0 {
		t.Fatalf("attribution = %v, want nic_wait=80 other=20", got)
	}
	if p.SegmentSumNS != 100 {
		t.Fatalf("segment sum = %d, want 100", p.SegmentSumNS)
	}
}

// TestCritPathClipsToLifetime checks intervals outside [submit, complete]
// are clipped and cannot inflate the attribution.
func TestCritPathClipsToLifetime(t *testing.T) {
	cp := NewCritPath(1)
	sh := cp.Shard(0)
	id := ReqID{Node: 2, Seq: 1}
	sh.Mark(id, SegSubmit, 50)
	sh.Mark(id, SegComplete, 150)
	sh.Record(id, SegAppExecute, 0, 200) // covers the whole lifetime after clipping

	p := cp.Profile(0)
	if p.SegmentSumNS != 100 || p.TotalE2ENS != 100 {
		t.Fatalf("sum=%d e2e=%d, want 100/100", p.SegmentSumNS, p.TotalE2ENS)
	}
	if len(p.Segments) != 1 || p.Segments[0].Name != "app_execute" || p.Segments[0].TotalNS != 100 {
		t.Fatalf("segments = %+v, want app_execute=100", p.Segments)
	}
}

// TestCritPathShardLayoutIndependence pins the merge guarantee behind
// the multi-domain hard invariant: the same recorded content produces a
// byte-identical profile whether it sits in one shard or is scattered
// over many in a different order.
func TestCritPathShardLayoutIndependence(t *testing.T) {
	type rec struct {
		id         ReqID
		seg        Segment
		start, end sim.Time
	}
	var recs []rec
	for i := 0; i < 40; i++ {
		id := ReqID{Node: uint64(1 + i%3), Seq: uint64(i)}
		base := sim.Time(i * 1000)
		recs = append(recs,
			rec{id, SegSubmit, base, base},
			rec{id, SegSent, base + 10, base + 10},
			rec{id, SegDelivered, base + 200, base + 200},
			rec{id, SegAppExecute, base + 200, base + 300},
			rec{id, SegDone, base + 320, base + 320},
			rec{id, SegComplete, base + 400, base + 400},
		)
	}
	apply := func(sh *CPShard, r rec) {
		if r.start == r.end {
			sh.Mark(r.id, r.seg, r.start)
		} else {
			sh.Record(r.id, r.seg, r.start, r.end)
		}
	}

	one := NewCritPath(1)
	for _, r := range recs {
		apply(one.Shard(0), r)
	}
	four := NewCritPath(4)
	// Scatter in reversed order over 4 shards: a layout no real run
	// produces, which the merge must still normalize.
	for i := len(recs) - 1; i >= 0; i-- {
		apply(four.Shard(i%4), recs[i])
	}

	var a, b bytes.Buffer
	if err := one.Profile(5).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := four.Profile(5).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("profiles differ across shard layouts:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestCritPathNilSafety: every method on nil receivers is a no-op.
func TestCritPathNilSafety(t *testing.T) {
	var cp *CritPath
	var sh *CPShard
	sh.Mark(ReqID{}, SegSubmit, 0)
	sh.Record(ReqID{}, SegNicWait, 0, 10)
	if sh.Len() != 0 {
		t.Fatal("nil shard has records")
	}
	if got := cp.Shard(3); got != nil {
		t.Fatal("nil critpath returned a shard")
	}
	p := cp.Profile(5)
	if p.Requests != 0 || len(p.Segments) != 0 {
		t.Fatalf("nil critpath produced a profile: %+v", p)
	}
}
