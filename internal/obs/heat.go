package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"heron/internal/sim"
)

// Per-partition heat telemetry: each partition accumulates throughput,
// queue-depth and latency figures that roll into a time series on a
// fixed virtual-time cadence, plus a space-saving top-k sketch of the
// hottest keys. The report is the input format for a load-driven
// auto-rebalancing loop: per partition, "how hot, how backed up, how
// skewed, and trending which way".
//
// Sharding: a PartitionHeat belongs to the simulation domain hosting its
// partition and is only ever touched from that domain's thread. Rolling
// is lazy — samples are cut when a record call crosses a cadence
// boundary, and Report flushes the final partial interval — so the
// series needs no timer processes and stays deterministic.

// HeatSample is one cadence interval of one partition.
type HeatSample struct {
	AtNS      int64  `json:"at_ns"` // interval start
	Executed  uint64 `json:"executed"`
	QueueMax  int64  `json:"queue_max"`
	MeanLatNS int64  `json:"mean_lat_ns"`
	MaxLatNS  int64  `json:"max_lat_ns"`
}

// KeyCount is one entry of the top-k sketch. Err bounds the
// overestimation inherited from the counter the key displaced.
type KeyCount struct {
	Key   uint64 `json:"key"`
	Count uint64 `json:"count"`
	Err   uint64 `json:"err,omitempty"`
}

// PartitionHeat accumulates one partition's telemetry. All methods are
// no-ops on a nil receiver.
type PartitionHeat struct {
	cadence  sim.Duration
	nextTick sim.Time
	samples  []HeatSample

	// Current-interval accumulators.
	executed uint64
	latSum   int64
	latMax   int64
	latCount uint64
	queueMax int64

	total uint64 // executed across all intervals

	// Space-saving sketch state: entries plus a key index. k is small,
	// so min-replacement is a linear scan. Counts halve every
	// decayWindows cadence intervals (zeroed entries are evicted), so a
	// key that stops being touched ages out of the sketch instead of
	// shadowing the current hotspot forever: the rebalancer must never
	// split at a boundary a past flash crowd picked.
	k            int
	entries      []KeyCount
	keyIdx       map[uint64]int
	decayWindows int
	decayCtr     int
}

// roll cuts samples for every cadence boundary passed by now.
func (ph *PartitionHeat) roll(now sim.Time) {
	for now >= ph.nextTick {
		s := HeatSample{
			AtNS:     int64(ph.nextTick - sim.Time(ph.cadence)),
			Executed: ph.executed,
			QueueMax: ph.queueMax,
			MaxLatNS: ph.latMax,
		}
		if ph.latCount > 0 {
			s.MeanLatNS = ph.latSum / int64(ph.latCount)
		}
		ph.samples = append(ph.samples, s)
		ph.executed, ph.latSum, ph.latMax, ph.latCount, ph.queueMax = 0, 0, 0, 0, 0
		ph.nextTick += sim.Time(ph.cadence)
		ph.decaySketch()
	}
}

// decaySketch ages the sketch by one cadence window: every decayWindows
// windows all counts (and error bounds) halve and entries that reach zero
// are evicted, preserving slot order so replacement stays deterministic.
func (ph *PartitionHeat) decaySketch() {
	if ph.decayWindows <= 0 || len(ph.entries) == 0 {
		return
	}
	ph.decayCtr++
	if ph.decayCtr < ph.decayWindows {
		return
	}
	ph.decayCtr = 0
	kept := ph.entries[:0]
	for _, e := range ph.entries {
		e.Count /= 2
		e.Err /= 2
		if e.Count > 0 {
			kept = append(kept, e)
		}
	}
	ph.entries = kept
	for key := range ph.keyIdx {
		delete(ph.keyIdx, key)
	}
	for i, e := range ph.entries {
		ph.keyIdx[e.Key] = i
	}
}

// RecordExec records one completed request with its service latency.
func (ph *PartitionHeat) RecordExec(now sim.Time, lat sim.Duration) {
	if ph == nil {
		return
	}
	ph.roll(now)
	ph.executed++
	ph.total++
	v := int64(lat)
	if v < 0 {
		v = 0
	}
	ph.latSum += v
	ph.latCount++
	if v > ph.latMax {
		ph.latMax = v
	}
}

// RecordQueue records an observed queue depth (pending deliveries,
// pump backlog); the interval keeps the maximum.
func (ph *PartitionHeat) RecordQueue(now sim.Time, depth int) {
	if ph == nil {
		return
	}
	ph.roll(now)
	if int64(depth) > ph.queueMax {
		ph.queueMax = int64(depth)
	}
}

// Touch feeds one key access into the space-saving top-k sketch.
func (ph *PartitionHeat) Touch(key uint64) {
	if ph == nil || ph.k == 0 {
		return
	}
	if i, ok := ph.keyIdx[key]; ok {
		ph.entries[i].Count++
		return
	}
	if len(ph.entries) < ph.k {
		ph.keyIdx[key] = len(ph.entries)
		ph.entries = append(ph.entries, KeyCount{Key: key, Count: 1})
		return
	}
	// Replace the minimum counter (first minimum in slot order, which is
	// deterministic), inheriting its count as the error bound.
	min := 0
	for i := 1; i < len(ph.entries); i++ {
		if ph.entries[i].Count < ph.entries[min].Count {
			min = i
		}
	}
	old := ph.entries[min]
	delete(ph.keyIdx, old.Key)
	ph.keyIdx[key] = min
	ph.entries[min] = KeyCount{Key: key, Count: old.Count + 1, Err: old.Count}
}

// TopKeys returns the sketch sorted by count descending (then error
// ascending, then key ascending).
func (ph *PartitionHeat) TopKeys() []KeyCount {
	if ph == nil {
		return nil
	}
	out := make([]KeyCount, len(ph.entries))
	copy(out, ph.entries)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Err != out[j].Err {
			return out[i].Err < out[j].Err
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Heat owns all partitions' telemetry for one run.
type Heat struct {
	cadence sim.Duration
	topK    int
	parts   []*PartitionHeat
}

// DefaultSketchDecayWindows is the default sketch half-life in cadence
// windows: counts halve every this many intervals, so a key untouched for
// a few half-lives drops out of the sketch entirely.
const DefaultSketchDecayWindows = 4

// NewHeat creates a heat collector with the given sampling cadence and
// sketch width. Partitions are materialized by Partition; resolve them
// at deployment wiring time, before domain threads start. The hot-key
// sketch decays with DefaultSketchDecayWindows; tune with SetSketchDecay.
func NewHeat(partitions int, cadence sim.Duration, topK int) *Heat {
	if partitions < 1 {
		partitions = 1
	}
	if cadence <= 0 {
		cadence = 100 * sim.Microsecond
	}
	if topK < 0 {
		topK = 0
	}
	h := &Heat{cadence: cadence, topK: topK, parts: make([]*PartitionHeat, partitions)}
	for i := range h.parts {
		h.parts[i] = &PartitionHeat{
			cadence:      cadence,
			nextTick:     sim.Time(cadence),
			k:            topK,
			keyIdx:       make(map[uint64]int, topK),
			decayWindows: DefaultSketchDecayWindows,
		}
	}
	return h
}

// SetSketchDecay sets the sketch half-life in cadence windows on every
// partition (0 disables decay entirely). Call before recording starts.
func (h *Heat) SetSketchDecay(windows int) {
	if h == nil {
		return
	}
	for _, ph := range h.parts {
		ph.decayWindows = windows
	}
}

// Partition returns partition i's collector (clamped into range;
// nil-safe).
func (h *Heat) Partition(i int) *PartitionHeat {
	if h == nil {
		return nil
	}
	if i < 0 || i >= len(h.parts) {
		i = 0
	}
	return h.parts[i]
}

// PartitionHeatReport is one partition's serialized series.
type PartitionHeatReport struct {
	Partition int          `json:"partition"`
	Executed  uint64       `json:"executed"`
	Samples   []HeatSample `json:"samples,omitempty"`
	TopKeys   []KeyCount   `json:"top_keys,omitempty"`
}

// HeatReport is the full telemetry snapshot, the format the
// auto-rebalancing policy loop consumes.
type HeatReport struct {
	CadenceNS  int64                 `json:"cadence_ns"`
	Partitions []PartitionHeatReport `json:"partitions"`
}

// Report flushes every partition up to end and serializes the series,
// partitions in index order. The output depends only on recorded
// content, so same-seed runs produce byte-identical reports under any
// domain count.
func (h *Heat) Report(end sim.Time) *HeatReport {
	if h == nil {
		return &HeatReport{}
	}
	r := &HeatReport{CadenceNS: int64(h.cadence)}
	for i, ph := range h.parts {
		ph.roll(end)
		pr := PartitionHeatReport{Partition: i, Executed: ph.total, TopKeys: ph.TopKeys()}
		// Trim the idle tail: keep up to the last active sample.
		last := -1
		for j, s := range ph.samples {
			if s.Executed > 0 || s.QueueMax > 0 {
				last = j
			}
		}
		if last >= 0 {
			pr.Samples = append(pr.Samples, ph.samples[:last+1]...)
		}
		r.Partitions = append(r.Partitions, pr)
	}
	return r
}

// HeatSub is an incremental subscription over a Heat collector: each Poll
// returns only the cadence samples cut since the previous Poll, plus the
// current (decayed) hot-key sketch. It is the feed a policy loop consumes
// on its own cadence — pull-based, so the collector needs no timers and
// the consumer decides the decision tick. Single-domain consumers only:
// Poll touches every partition, so under the parallel kernel it may only
// run before domain threads start or after they join.
type HeatSub struct {
	h      *Heat
	cursor []int // per partition: samples already delivered
}

// Subscribe returns a new incremental subscription (nil-safe). Multiple
// subscriptions are independent: each keeps its own cursor.
func (h *Heat) Subscribe() *HeatSub {
	if h == nil {
		return nil
	}
	return &HeatSub{h: h, cursor: make([]int, len(h.parts))}
}

// Poll rolls every partition up to now and returns the samples cut since
// the previous Poll, in partition index order. The report's TopKeys carry
// the sketch as of now. Nil-safe: a nil subscription returns an empty
// report.
func (s *HeatSub) Poll(now sim.Time) *HeatReport {
	if s == nil {
		return &HeatReport{}
	}
	r := &HeatReport{CadenceNS: int64(s.h.cadence)}
	for i, ph := range s.h.parts {
		ph.roll(now)
		pr := PartitionHeatReport{Partition: i, Executed: ph.total, TopKeys: ph.TopKeys()}
		if n := len(ph.samples); n > s.cursor[i] {
			pr.Samples = append(pr.Samples, ph.samples[s.cursor[i]:n]...)
			s.cursor[i] = n
		}
		r.Partitions = append(r.Partitions, pr)
	}
	return r
}

// WriteJSON writes the report as deterministic indented JSON.
func (r *HeatReport) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Format renders a per-partition summary table.
func (r *HeatReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "partition heat (cadence %s):\n", fmtDur(sim.Duration(r.CadenceNS)))
	fmt.Fprintf(&b, "%-10s %10s %8s %10s %10s  %s\n",
		"partition", "executed", "samples", "peak_rps", "queue_max", "hottest keys")
	for _, p := range r.Partitions {
		var peak uint64
		var qmax int64
		for _, s := range p.Samples {
			if s.Executed > peak {
				peak = s.Executed
			}
			if s.QueueMax > qmax {
				qmax = s.QueueMax
			}
		}
		peakRPS := float64(peak) / (float64(r.CadenceNS) / 1e9)
		var keys []string
		for i, k := range p.TopKeys {
			if i == 3 {
				break
			}
			keys = append(keys, fmt.Sprintf("%d(×%d)", k.Key, k.Count))
		}
		fmt.Fprintf(&b, "%-10d %10d %8d %10.0f %10d  %s\n",
			p.Partition, p.Executed, len(p.Samples), peakRPS, qmax, strings.Join(keys, " "))
	}
	return b.String()
}
