package obs

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"heron/internal/sim"
)

// Always-on flight recorder: a fixed-size per-domain ring buffer of
// cheap binary event records. Recording one event is a couple of integer
// stores into a preallocated ring — no allocation, no formatting, no
// branching on configuration beyond one nil test — so the recorder can
// stay armed on every run. When a trigger fires (lincheck violation,
// chaos crash, simulation deadlock, latency outlier) the ring is dumped
// as a Chrome trace_event / Perfetto file, so the failure ships with the
// protocol-level history that led up to it.

// FlightKind classifies one flight record.
type FlightKind uint8

const (
	FltSubmit        FlightKind = iota // client/pump handed a request to the multicast
	FltDeliver                         // atomic multicast delivered a message
	FltCommit                          // proposal committed at a group leader
	FltViewChange                      // multicast view change
	FltExec                            // replica finished executing a request
	FltStateTransfer                   // replica ran a state transfer
	FltCrash                           // fault injection: node crash
	FltRecover                         // fault injection: node recovery
	FltPartition                       // fault injection: link partition
	FltHeal                            // fault injection: link heal
	FltSlowLink                        // fault injection: link degradation
	FltReconfig                        // reconfiguration event fired
	FltCheckpoint                      // durable checkpoint written
	FltVerbError                       // rdma verb posting/completion error
	FltOutlier                         // latency outlier trigger marker
	FltCompaction                      // lsm background compaction committed

	fltCount
)

var fltNames = [fltCount]string{
	"submit", "deliver", "commit", "view_change", "exec", "state_transfer",
	"crash", "recover", "partition", "heal", "slow_link", "reconfig",
	"checkpoint", "verb_error", "outlier", "compaction",
}

// String names the kind for the dumped trace.
func (k FlightKind) String() string {
	if int(k) < len(fltNames) {
		return fltNames[k]
	}
	return fmt.Sprintf("flight(%d)", int(k))
}

// FlightRec is one binary event record: 32 bytes, no pointers.
type FlightRec struct {
	At   sim.Time
	A, B uint64 // kind-specific payload (ids, timestamps, byte counts)
	Node uint32 // originating fabric node (0 when not node-scoped)
	Kind FlightKind
}

// FlightShard is one domain's ring. Only the owning domain's thread may
// record into it; the ring buffer is allocated lazily on first use, so
// an armed-but-silent recorder costs a few words per domain. All methods
// are no-ops on a nil shard.
type FlightShard struct {
	buf     []FlightRec
	cap     int
	next    int
	wrapped bool
}

// Record appends one event, overwriting the oldest once the ring is full.
func (s *FlightShard) Record(at sim.Time, kind FlightKind, node uint32, a, b uint64) {
	if s == nil {
		return
	}
	if s.buf == nil {
		s.buf = make([]FlightRec, s.cap)
	}
	s.buf[s.next] = FlightRec{At: at, Kind: kind, Node: node, A: a, B: b}
	s.next++
	if s.next == s.cap {
		s.next = 0
		s.wrapped = true
	}
}

// Len returns the number of live records in the ring.
func (s *FlightShard) Len() int {
	if s == nil || s.buf == nil {
		return 0
	}
	if s.wrapped {
		return s.cap
	}
	return s.next
}

// records returns the live records, oldest first.
func (s *FlightShard) records() []FlightRec {
	if s == nil || s.buf == nil {
		return nil
	}
	if !s.wrapped {
		return s.buf[:s.next]
	}
	out := make([]FlightRec, 0, s.cap)
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// FlightRecorder owns the per-domain rings of one run.
type FlightRecorder struct {
	shards []*FlightShard
}

// NewFlightRecorder creates a recorder with one ring of perDomainCap
// records per simulation domain. Ring memory is allocated on first
// record, not up front.
func NewFlightRecorder(domains, perDomainCap int) *FlightRecorder {
	if domains < 1 {
		domains = 1
	}
	if perDomainCap < 16 {
		perDomainCap = 16
	}
	f := &FlightRecorder{shards: make([]*FlightShard, domains)}
	for i := range f.shards {
		f.shards[i] = &FlightShard{cap: perDomainCap}
	}
	return f
}

// Shard returns the ring for a domain (clamped into range; nil-safe).
func (f *FlightRecorder) Shard(domain int) *FlightShard {
	if f == nil {
		return nil
	}
	if domain < 0 || domain >= len(f.shards) {
		domain = 0
	}
	return f.shards[domain]
}

// Len returns the live record count across all shards.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	n := 0
	for _, s := range f.shards {
		n += s.Len()
	}
	return n
}

// WriteTrace dumps the merged rings as a Chrome trace_event file
// (loadable in chrome://tracing and Perfetto): one "flight" process with
// a thread per fabric node, every record an instant event carrying its
// payload. reason labels the dump in a metadata header. Records merge in
// a content-determined order — (time, node, kind, payload) — so the
// output is independent of shard layout: the same recorded history
// serializes to the same bytes under any domain count.
func (f *FlightRecorder) WriteTrace(w io.Writer, reason string) error {
	var recs []FlightRec
	if f != nil {
		for _, s := range f.shards {
			recs = append(recs, s.records()...)
		}
	}
	sort.SliceStable(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})

	out := []jsonEvent{{Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "flight-recorder", "reason": reason}}}
	seenTid := make(map[int]bool)
	for _, r := range recs {
		tid := int(r.Node) + 1
		if !seenTid[tid] {
			seenTid[tid] = true
			out = append(out, jsonEvent{Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
				Args: map[string]any{"name": fmt.Sprintf("node%d", r.Node)}})
		}
		out = append(out, jsonEvent{
			Name: r.Kind.String(),
			Cat:  "flight",
			Ph:   "i",
			S:    "t",
			Ts:   usec(r.At),
			Pid:  1,
			Tid:  tid,
			Args: map[string]any{"a": r.A, "b": r.B},
		})
	}
	return writeTraceEvents(w, out)
}

// DumpFile writes the trace to dir/name, creating dir if needed, and
// returns the full path.
func (f *FlightRecorder) DumpFile(dir, name, reason string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name)
	fh, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := f.WriteTrace(fh, reason); err != nil {
		fh.Close()
		return "", err
	}
	return path, fh.Close()
}
