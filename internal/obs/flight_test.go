package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"

	"heron/internal/sim"
	"testing"
)

// TestFlightRingWrap checks the ring keeps exactly the newest perDomainCap
// records, oldest first.
func TestFlightRingWrap(t *testing.T) {
	fr := NewFlightRecorder(1, 16)
	sh := fr.Shard(0)
	for i := 0; i < 40; i++ {
		sh.Record(sim.Time(i), FltDeliver, 1, uint64(i), 0)
	}
	if sh.Len() != 16 {
		t.Fatalf("ring holds %d records, want 16", sh.Len())
	}
	recs := sh.records()
	if recs[0].A != 24 || recs[len(recs)-1].A != 39 {
		t.Fatalf("ring window [%d..%d], want [24..39]", recs[0].A, recs[len(recs)-1].A)
	}
}

// TestFlightTraceShardIndependence: the same records produce a
// byte-identical trace whether recorded into one ring or scattered over
// four (the multi-domain merge guarantee).
func TestFlightTraceShardIndependence(t *testing.T) {
	one := NewFlightRecorder(1, 256)
	four := NewFlightRecorder(4, 256)
	for i := 0; i < 60; i++ {
		at := sim.Time(i * 100)
		node := uint32(1 + i%5)
		one.Shard(0).Record(at, FltDeliver, node, uint64(i), 7)
	}
	for i := 59; i >= 0; i-- {
		at := sim.Time(i * 100)
		node := uint32(1 + i%5)
		four.Shard(i%4).Record(at, FltDeliver, node, uint64(i), 7)
	}
	var a, b bytes.Buffer
	if err := one.WriteTrace(&a, "test"); err != nil {
		t.Fatal(err)
	}
	if err := four.WriteTrace(&b, "test"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("flight traces differ across shard layouts")
	}
}

// TestFlightDumpFileLoadable checks DumpFile writes a valid Chrome
// trace_event JSON object with instant events (the chrome://tracing
// loadability criterion).
func TestFlightDumpFileLoadable(t *testing.T) {
	fr := NewFlightRecorder(2, 64)
	fr.Shard(0).Record(sim.Time(1000), FltCrash, 3, 0, 1)
	fr.Shard(1).Record(sim.Time(2000), FltRecover, 3, 0, 1)
	dir := t.TempDir()
	path, err := fr.DumpFile(dir, "flight-test.json", "unit-test")
	if err != nil {
		t.Fatal(err)
	}
	if path != filepath.Join(dir, "flight-test.json") {
		t.Fatalf("unexpected path %s", path)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	var instants int
	names := map[string]bool{}
	for _, ev := range parsed.TraceEvents {
		if ev.Ph == "i" {
			instants++
			names[ev.Name] = true
		}
	}
	if instants != 2 || !names["crash"] || !names["recover"] {
		t.Fatalf("dump events: %d instants, names %v", instants, names)
	}
}

// TestFlightNilSafety: nil recorders and shards are no-ops.
func TestFlightNilSafety(t *testing.T) {
	var fr *FlightRecorder
	var sh *FlightShard
	sh.Record(0, FltExec, 1, 2, 3)
	if sh.Len() != 0 || fr.Len() != 0 {
		t.Fatal("nil flight recorded something")
	}
	if fr.Shard(0) != nil {
		t.Fatal("nil recorder returned a shard")
	}
	var buf bytes.Buffer
	if err := fr.WriteTrace(&buf, "nil"); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("nil recorder trace is not valid JSON")
	}
}
