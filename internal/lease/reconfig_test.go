package lease_test

import (
	"testing"

	"heron/internal/core"
	"heron/internal/lease"
	"heron/internal/multicast"
	"heron/internal/rdma"
	"heron/internal/reconfig"
	"heron/internal/sim"
	"heron/internal/store"
)

// TestRevokeMidMigration wires the lease Manager into a live
// reconfiguration as its LeaseFencer and drives a split that migrates an
// object range to a brand-new partition. The change must revoke every
// lease before the epoch flip (no holder can serve pre-migration state
// across it), and after commit the grant loop must cover the new
// partition so migrated objects are readable through the local fast path
// with their migrated values intact.
func TestRevokeMidMigration(t *testing.T) {
	const keys = 8
	groups := [][]rdma.NodeID{{1, 2, 3}, {4, 5, 6}}
	initial := &reconfig.Configuration{
		Epoch:  1,
		Groups: groups,
		Routes: []reconfig.Range{
			{Lo: 0, Hi: 3, Part: 0},
			{Lo: 4, Hi: 7, Part: 1},
		},
	}

	s := sim.NewScheduler()
	cfg := core.DefaultConfig(multicast.DefaultConfig(groups))
	cfg.StoreCapacity = keys*store.SlotSize(8) + 1<<12
	cfg.MaxPartitions = 3
	cfg.MaxGroupSize = 3
	d, err := core.NewDeployment(s, cfg, newRegApp, initial)
	if err != nil {
		t.Fatal(err)
	}
	err = d.PopulateAll(func(part core.PartitionID, rank int, rep *core.Replica) error {
		for k := 0; k < keys; k++ {
			oid := store.OID(k)
			if initial.PartitionOf(oid) != part {
				continue
			}
			if err := rep.Store().Register(oid, 8); err != nil {
				return err
			}
			if err := rep.Store().Init(oid, encodeVal(0)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr := reconfig.NewManager(d, initial, reconfig.ManagerOptions{Apps: newRegApp})
	d.Start()
	m := lease.Attach(d, lease.Options{})
	m.Start()
	mgr.SetLeaseFencer(m)

	rc := lease.NewReadClient(d.NewClient(), m)
	cr := reconfig.NewClientRouter(d.NewClient(), initial)

	const (
		movedA = store.OID(4) // written before the change, read after
		movedB = store.OID(5) // written after the change
	)
	change := reconfig.Change{
		AddPartitions: [][]rdma.NodeID{{201, 202, 203}},
		Moves:         []reconfig.Move{{Lo: 4, Hi: 7, To: 2}},
	}

	done := false
	s.Spawn("driver", func(p *sim.Proc) {
		p.Sleep(2 * sim.Millisecond) // leases established on both partitions
		if _, ok := cr.SubmitTimeout(p, []store.OID{movedA}, encodeOp(1, movedA, 17), 10*sim.Millisecond); !ok {
			t.Error("pre-change write timed out")
			return
		}
		if val, ok := rc.TryLocal(p, 1, movedA); !ok {
			t.Error("local read declined before the change")
			return
		} else if got := decodeVal(val); got != 17 {
			t.Errorf("pre-change local read = %d, want 17", got)
			return
		}

		revokesBefore := m.Revokes
		res, execErr := mgr.Execute(p, change)
		if execErr != nil {
			t.Errorf("execute: %v", execErr)
			return
		}
		if !res.Committed {
			t.Error("change did not commit")
			return
		}
		if m.Revokes <= revokesBefore {
			t.Error("Execute did not revoke leases through the fencer")
		}
		if res.Moved == 0 {
			t.Error("no objects migrated")
		}

		p.Sleep(2 * sim.Millisecond) // grant loop covers the new partition
		if h := m.Holder(2); h < 0 {
			t.Error("migrated partition has no lease after resume")
			return
		}
		// Migrated state must be visible through the new partition's
		// local fast path without a post-change write.
		if val, ok := rc.TryLocal(p, 2, movedA); !ok {
			t.Error("local read declined at the migrated partition")
			return
		} else if got := decodeVal(val); got != 17 {
			t.Errorf("migrated local read = %d, want 17", got)
		}
		// And the ordered path under the new epoch still feeds it.
		if _, ok := cr.SubmitTimeout(p, []store.OID{movedB}, encodeOp(1, movedB, 99), 10*sim.Millisecond); !ok {
			t.Error("post-change write timed out")
			return
		}
		if val, ok := rc.TryLocal(p, 2, movedB); !ok {
			t.Error("local read of post-change write declined")
			return
		} else if got := decodeVal(val); got != 99 {
			t.Errorf("post-change local read = %d, want 99", got)
		}
		if cr.Epoch() != initial.Epoch+1 {
			t.Errorf("router epoch = %d, want %d", cr.Epoch(), initial.Epoch+1)
		}
		done = true
	})
	if err := s.RunUntil(sim.Time(100 * sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("driver did not finish")
	}
	if rc.Local != 3 {
		t.Errorf("local hits = %d, want 3", rc.Local)
	}
}
