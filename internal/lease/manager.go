// Package lease grants per-partition read leases over virtual time so
// one replica per partition ("the holder") can serve single-object reads
// locally — one control-plane round trip instead of a multicast round.
//
// The Manager is the grantor: a single simulation process that, every
// Renew interval, renews the current holder's lease (or grants a fresh
// one to the lowest live rank) by submitting a lease command into the
// partition's total order. The replica-side protocol — applying grants
// and revocations in execution order, gating non-holder replies on the
// holder's published execution frontier, serving local reads — lives in
// internal/core (see core/lease.go for the safety argument).
//
// Holder choice is sticky: as long as the current holder is alive it is
// renewed, so its self-serve privilege and published frontier stay
// continuous. The Manager switches holders only when the incumbent has
// crashed (a crashed holder cannot serve, and rejoin clears its
// self-serve flag before it executes again, so an immediate re-grant is
// safe) or when no lease was held. Expiries are absolute virtual-time
// instants stamped by the grantor; the shared simulated clock makes
// "expired" a globally consistent predicate with no skew margin.
//
// The Manager also implements reconfig.LeaseFencer: before a
// reconfiguration command enters the total order, FenceLeases revokes
// every outstanding lease and sleeps until the latest absolute expiry
// has passed, so no replica can serve a local read across the epoch
// flip from pre-migration state.
package lease

import (
	"heron/internal/core"
	"heron/internal/multicast"
	"heron/internal/rdma"
	"heron/internal/sim"
)

// Default lease timing. Exported so harnesses (e.g. the chaos leasecrash
// schedule generator) can compute the exact virtual instants at which
// grants and renewals happen and aim faults at them.
const (
	// DefaultTTL is the lease lifetime stamped into each grant.
	DefaultTTL = 1 * sim.Millisecond
	// DefaultRenew is the grant-loop cadence; at TTL/2 a healthy holder
	// is always renewed well before its lease expires.
	DefaultRenew = DefaultTTL / 2
	// DefaultStart delays the first grant past deployment start-up.
	DefaultStart = 100 * sim.Microsecond
	// DefaultProbeTimeout bounds a client's local-read probe before it
	// falls back to the ordered path.
	DefaultProbeTimeout = 50 * sim.Microsecond
)

// Options configure a Manager.
type Options struct {
	// TTL is the lease lifetime per grant (default DefaultTTL).
	TTL sim.Duration
	// Renew is the grant-loop cadence (default DefaultRenew).
	Renew sim.Duration
	// Start is the virtual delay before the first grant (default
	// DefaultStart).
	Start sim.Duration
	// Until, when nonzero, stops the grant loop at that instant; leases
	// then lapse at their absolute expiry. Zero runs the loop forever
	// (fine under RunUntil-bounded simulations).
	Until sim.Time
}

func (o Options) withDefaults() Options {
	if o.TTL <= 0 {
		o.TTL = DefaultTTL
	}
	if o.Renew <= 0 {
		o.Renew = o.TTL / 2
	}
	if o.Start <= 0 {
		o.Start = DefaultStart
	}
	return o
}

// partLease is the grantor's book-keeping for one partition.
type partLease struct {
	seq    uint64
	holder int // rank; -1 when no live lease is tracked
	expire sim.Time
}

// Manager is the lease grantor for one deployment. All mutation happens
// on the grant-loop process and (during fencing) the reconfiguration
// manager's process; the cooperative scheduler serializes them, and
// every book-keeping update happens before the multicast submission it
// describes, so a fence arriving between the two still sees the lease
// it must wait out.
type Manager struct {
	d   *core.Deployment
	opt Options

	// mc submits grants/renewals (grant-loop process only); fmc submits
	// fence revocations (reconfiguration process only). Two multicast
	// clients because the two processes submit concurrently and a
	// multicast client is single-caller.
	mc  *multicast.Client
	fmc *multicast.Client

	parts  []partLease
	fenced bool
	cond   *sim.Cond // wakes the grant loop when fencing ends

	// Grants and Revokes count commands submitted by this manager
	// (virtual-time deterministic).
	Grants  uint64
	Revokes uint64
}

// Attach builds a Manager for a deployment. Call before the simulation
// starts issuing load; Start spawns the grant loop.
func Attach(d *core.Deployment, opt Options) *Manager {
	m := &Manager{
		d:    d,
		opt:  opt.withDefaults(),
		mc:   multicast.NewClient(multicast.OverRDMA(d.TrMC), &d.Cfg.Multicast, d.AllocClientNode()),
		fmc:  multicast.NewClient(multicast.OverRDMA(d.TrMC), &d.Cfg.Multicast, d.AllocClientNode()),
		cond: sim.NewCond(d.Sched),
	}
	return m
}

// Start spawns the grant-loop process.
func (m *Manager) Start() {
	m.d.Sched.Spawn("lease-manager", m.run)
}

func (m *Manager) run(p *sim.Proc) {
	p.Sleep(m.opt.Start)
	for {
		if m.opt.Until > 0 && p.Now() >= m.opt.Until {
			return
		}
		m.cond.WaitUntil(p, func() bool { return !m.fenced })
		m.tick(p)
		p.Sleep(m.opt.Renew)
	}
}

// tick grants or renews one lease per partition. Book-keeping is updated
// before each multicast submission (the submission is a yield point); a
// fence that preempts the loop mid-tick revokes what was already booked
// and the fenced check stops the remainder of the sweep.
func (m *Manager) tick(p *sim.Proc) {
	for len(m.parts) < len(m.d.Replicas) {
		m.parts = append(m.parts, partLease{holder: -1})
	}
	for part := range m.d.Replicas {
		if m.fenced {
			return
		}
		st := &m.parts[part]
		reps := m.d.Replicas[part]
		next := -1
		if st.holder >= 0 && st.holder < len(reps) && !reps[st.holder].Crashed() {
			next = st.holder // sticky: renew the live incumbent
		} else {
			for rank, rep := range reps {
				if !rep.Crashed() {
					next = rank
					break
				}
			}
		}
		if next < 0 {
			continue // no live replica; retry next tick
		}
		st.seq++
		st.holder = next
		st.expire = p.Now() + sim.Time(m.opt.TTL)
		m.Grants++
		m.mc.Multicast(p, []core.PartitionID{core.PartitionID(part)},
			core.EncodeLeaseCommand(st.seq, core.LeaseGrant, next, st.expire))
	}
}

// FenceLeases implements reconfig.LeaseFencer: it pauses the grant loop,
// submits a revocation for every outstanding lease, and sleeps until the
// latest absolute expiry has passed. On return no replica can self-serve
// (the holders either executed their revocation or their lease expired
// on the shared clock), and no new lease will be granted until
// ResumeLeases. Runs on the reconfiguration manager's process.
func (m *Manager) FenceLeases(p *sim.Proc) {
	m.fenced = true
	var maxExpire sim.Time
	for part := range m.parts {
		st := &m.parts[part]
		if st.holder < 0 {
			continue
		}
		if st.expire > maxExpire {
			maxExpire = st.expire
		}
		st.seq++
		st.holder = -1
		st.expire = 0
		m.Revokes++
		m.fmc.Multicast(p, []core.PartitionID{core.PartitionID(part)},
			core.EncodeLeaseCommand(st.seq, core.LeaseRevoke, 0, 0))
	}
	// An in-flight grant submitted just before the fence is already
	// booked (state-before-submission), so its expiry is covered by
	// maxExpire; if its command is ordered after the revocation it is
	// ignored as stale, and if ordered before, waiting out the expiry
	// below neutralizes it.
	if maxExpire > p.Now() {
		p.Sleep(sim.Duration(maxExpire - p.Now()))
	}
}

// ResumeLeases lifts the fence; the grant loop re-grants from scratch on
// its next tick.
func (m *Manager) ResumeLeases() {
	m.fenced = false
	m.cond.Broadcast()
}

// HolderNode returns the fabric node of the partition's current lease
// holder, or ok=false when no lease is live (never granted, expired,
// fenced, or the tracked holder crashed). Clients use it to aim their
// local-read probes; a stale answer is safe — the probe is declined and
// the client falls back to the ordered path.
func (m *Manager) HolderNode(part core.PartitionID) (rdma.NodeID, bool) {
	if int(part) >= len(m.parts) || m.fenced {
		return 0, false
	}
	st := m.parts[part]
	if st.holder < 0 || m.d.Sched.Now() >= st.expire {
		return 0, false
	}
	reps := m.d.Replicas[part]
	if st.holder >= len(reps) || reps[st.holder].Crashed() {
		return 0, false
	}
	return reps[st.holder].NodeID(), true
}

// Holder returns the tracked holder rank for a partition (-1 when none).
func (m *Manager) Holder(part core.PartitionID) int {
	if int(part) >= len(m.parts) {
		return -1
	}
	return m.parts[part].holder
}
