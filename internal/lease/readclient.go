package lease

import (
	"heron/internal/core"
	"heron/internal/sim"
	"heron/internal/store"
)

// ReadClient pairs a Heron client with a lease Manager for single-object
// reads: TryLocal probes the partition's lease holder for a local read
// and reports whether it succeeded; on decline or timeout the caller
// falls back to submitting an ordered read through the usual multicast
// path. Both outcomes are counted so harnesses can report the local-hit
// ratio.
type ReadClient struct {
	C   *core.Client
	Mgr *Manager
	// Timeout bounds each probe (default DefaultProbeTimeout).
	Timeout sim.Duration

	// Local counts probes answered by a holder; Fallback counts probes
	// that were declined, timed out, or found no live lease.
	Local    uint64
	Fallback uint64
}

// NewReadClient builds a ReadClient over an existing Heron client.
func NewReadClient(c *core.Client, m *Manager) *ReadClient {
	return &ReadClient{C: c, Mgr: m, Timeout: DefaultProbeTimeout}
}

// TryLocal attempts a local read of oid at its partition's lease holder.
// ok=true means the value is a linearizable read result (val may be nil
// for an absent object); ok=false means the caller must use the ordered
// path.
func (rc *ReadClient) TryLocal(p *sim.Proc, part core.PartitionID, oid store.OID) ([]byte, bool) {
	node, live := rc.Mgr.HolderNode(part)
	if !live {
		rc.Fallback++
		return nil, false
	}
	d := rc.Timeout
	if d <= 0 {
		d = DefaultProbeTimeout
	}
	val, ok := rc.C.LeaseRead(p, node, uint64(oid), d)
	if ok {
		rc.Local++
	} else {
		rc.Fallback++
	}
	return val, ok
}
