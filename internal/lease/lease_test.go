package lease_test

import (
	"testing"

	"heron/internal/core"
	"heron/internal/lease"
	"heron/internal/multicast"
	"heron/internal/rdma"
	"heron/internal/sim"
	"heron/internal/store"
	"heron/internal/wire"
)

// A minimal register application: payload [op u8][oid u64][val u64];
// op 0 reads the object (response = its value), op 1 writes val into it
// (response = val), op 2 is a write that additionally burns slowWriteCPU
// of execution time (for parallel-executor overlap tests). OIDs carry the
// owning partition in the high 32 bits.

const slowWriteCPU = 200 * sim.Microsecond

type regApp struct{ part core.PartitionID }

func newRegApp(part core.PartitionID, _ int) core.Application {
	return &regApp{part: part}
}

var regParter = core.PartitionerFunc(func(oid store.OID) core.PartitionID {
	return core.PartitionID(uint64(oid) >> 32)
})

func regOID(part core.PartitionID, key uint32) store.OID {
	return store.OID(uint64(part)<<32 | uint64(key))
}

func encodeOp(op uint8, oid store.OID, val uint64) []byte {
	w := wire.NewWriter(17)
	w.U8(op)
	w.U64(uint64(oid))
	w.U64(val)
	return w.Finish()
}

func decodeOp(b []byte) (op uint8, oid store.OID, val uint64) {
	r := wire.NewReader(b)
	return r.U8(), store.OID(r.U64()), r.U64()
}

func encodeVal(v uint64) []byte {
	w := wire.NewWriter(8)
	w.U64(v)
	return w.Finish()
}

func decodeVal(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return wire.NewReader(b).U64()
}

func (a *regApp) ReadSet(req *core.Request) []store.OID {
	op, oid, _ := decodeOp(req.Payload)
	if op == 0 {
		return []store.OID{oid}
	}
	return nil
}

// ConflictSets implements core.ConflictEstimator so the parallel executor
// can dispatch non-conflicting register ops to different workers.
func (a *regApp) ConflictSets(req *core.Request) (reads, writes []store.OID, ok bool) {
	op, oid, _ := decodeOp(req.Payload)
	if op == 0 {
		return []store.OID{oid}, nil, true
	}
	return nil, []store.OID{oid}, true
}

func (a *regApp) Execute(ctx *core.ExecContext) core.Outcome {
	op, oid, val := decodeOp(ctx.Req.Payload)
	if op == 0 {
		return core.Outcome{Response: append([]byte(nil), ctx.Values[oid]...)}
	}
	out := core.Outcome{
		Response: encodeVal(val),
		Writes:   []core.Write{{OID: oid, Val: encodeVal(val)}},
	}
	if op == 2 {
		out.CPU = slowWriteCPU
	}
	return out
}

const testKeys = 4

func build(t *testing.T, partitions, replicas int) (*sim.Scheduler, *core.Deployment) {
	t.Helper()
	return buildWorkers(t, partitions, replicas, 1)
}

func buildWorkers(t *testing.T, partitions, replicas, workers int) (*sim.Scheduler, *core.Deployment) {
	t.Helper()
	s := sim.NewScheduler()
	layout := make([][]rdma.NodeID, partitions)
	id := rdma.NodeID(1)
	for g := range layout {
		for r := 0; r < replicas; r++ {
			layout[g] = append(layout[g], id)
			id++
		}
	}
	cfg := core.DefaultConfig(multicast.DefaultConfig(layout))
	cfg.StoreCapacity = testKeys*store.SlotSize(8) + 1<<12
	cfg.ExecWorkers = workers
	d, err := core.NewDeployment(s, cfg, newRegApp, regParter)
	if err != nil {
		t.Fatal(err)
	}
	err = d.PopulateAll(func(part core.PartitionID, rank int, rep *core.Replica) error {
		for k := uint32(0); k < testKeys; k++ {
			if err := rep.Store().Register(regOID(part, k), 8); err != nil {
				return err
			}
			if err := rep.Store().Init(regOID(part, k), encodeVal(0)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	return s, d
}

// TestGrantAndLocalRead drives one ordered write and then reads it back
// through the holder's local-read path: the grant must have installed a
// self-serving holder, and the local read must observe the completed
// write (the gating invariant: by the time Submit returns, the holder's
// execution frontier covers the write).
func TestGrantAndLocalRead(t *testing.T) {
	s, d := build(t, 1, 3)
	m := lease.Attach(d, lease.Options{})
	m.Start()
	cl := d.NewClient()
	rc := lease.NewReadClient(cl, m)
	oid := regOID(0, 1)
	done := false
	s.Spawn("client", func(p *sim.Proc) {
		p.Sleep(500 * sim.Microsecond) // past the first grant
		if _, err := cl.Submit(p, []core.PartitionID{0}, encodeOp(1, oid, 42)); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		val, ok := rc.TryLocal(p, 0, oid)
		if !ok {
			t.Error("local read declined with a live lease")
			return
		}
		if got := decodeVal(val); got != 42 {
			t.Errorf("local read = %d, want 42", got)
		}
		done = true
	})
	if err := s.RunUntil(sim.Time(20 * sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("client did not finish")
	}
	if rc.Local != 1 {
		t.Errorf("local hits = %d, want 1", rc.Local)
	}
	if h := m.Holder(0); h != 0 {
		t.Errorf("holder = %d, want rank 0", h)
	}
	if !d.Replica(0, 0).LeaseSelfServe() {
		t.Error("holder replica is not self-serving")
	}
}

// TestParallelHolderGatesOwnReplies reproduces the parallel-executor
// read-your-write hazard: with ExecWorkers > 1, a fast write can finish
// while an older, slower, non-conflicting write is still in flight, so
// the holder's contiguous executed frontier (lastExec) has not covered
// the fast write yet. The holder must defer its own acknowledgement until
// the frontier passes the request — otherwise the client's immediate
// local read (served at lastExec+1) misses the write it was just acked.
func TestParallelHolderGatesOwnReplies(t *testing.T) {
	s, d := buildWorkers(t, 1, 3, 4)
	m := lease.Attach(d, lease.Options{})
	m.Start()
	slowCl := d.NewClient()
	cl := d.NewClient()
	rc := lease.NewReadClient(cl, m)
	slowOID, fastOID := regOID(0, 0), regOID(0, 3)
	done := false
	s.Spawn("slow-writer", func(p *sim.Proc) {
		p.Sleep(500 * sim.Microsecond) // past the first grant
		if _, err := slowCl.Submit(p, []core.PartitionID{0}, encodeOp(2, slowOID, 1)); err != nil {
			t.Errorf("slow write: %v", err)
		}
	})
	s.Spawn("client", func(p *sim.Proc) {
		// Land the fast write while the slow one occupies a worker.
		p.Sleep(550 * sim.Microsecond)
		if _, err := cl.Submit(p, []core.PartitionID{0}, encodeOp(1, fastOID, 99)); err != nil {
			t.Errorf("fast write: %v", err)
			return
		}
		val, ok := rc.TryLocal(p, 0, fastOID)
		if !ok {
			t.Error("local read declined with a live lease")
			return
		}
		if got := decodeVal(val); got != 99 {
			t.Errorf("local read after acked write = %d, want 99 — read-your-write violated", got)
		}
		done = true
	})
	if err := s.RunUntil(sim.Time(20 * sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("client did not finish")
	}
}

// TestHolderCrashSwitches crashes the holder mid-lease: the manager must
// re-grant to the next live rank (immediately — a crashed holder cannot
// serve), and local reads must resume at the new holder with the write
// still visible.
func TestHolderCrashSwitches(t *testing.T) {
	s, d := build(t, 1, 3)
	m := lease.Attach(d, lease.Options{})
	m.Start()
	cl := d.NewClient()
	rc := lease.NewReadClient(cl, m)
	oid := regOID(0, 2)
	done := false
	s.Spawn("client", func(p *sim.Proc) {
		p.Sleep(500 * sim.Microsecond)
		if _, err := cl.Submit(p, []core.PartitionID{0}, encodeOp(1, oid, 7)); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		d.Replica(0, 0).Crash()
		p.Sleep(2 * sim.Millisecond) // several renew ticks
		if h := m.Holder(0); h != 1 {
			t.Errorf("holder after crash = %d, want rank 1", h)
		}
		val, ok := rc.TryLocal(p, 0, oid)
		if !ok {
			t.Error("local read declined at the new holder")
			return
		}
		if got := decodeVal(val); got != 7 {
			t.Errorf("local read = %d, want 7", got)
		}
		done = true
	})
	if err := s.RunUntil(sim.Time(20 * sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("client did not finish")
	}
}

// TestFenceRevokesAndResumes checks the reconfig fencing contract: after
// FenceLeases returns, no replica self-serves and no holder is
// advertised; after ResumeLeases, the grant loop re-establishes leases.
func TestFenceRevokesAndResumes(t *testing.T) {
	s, d := build(t, 2, 3)
	m := lease.Attach(d, lease.Options{})
	m.Start()
	done := false
	s.Spawn("fencer", func(p *sim.Proc) {
		p.Sleep(2 * sim.Millisecond) // leases established
		for g := 0; g < d.Partitions(); g++ {
			if m.Holder(core.PartitionID(g)) < 0 {
				t.Errorf("partition %d has no lease before the fence", g)
			}
		}
		m.FenceLeases(p)
		for g := 0; g < d.Partitions(); g++ {
			for rank := 0; rank < 3; rank++ {
				if d.Replica(core.PartitionID(g), rank).LeaseSelfServe() {
					t.Errorf("p%d/r%d still self-serves after the fence", g, rank)
				}
			}
			if _, ok := m.HolderNode(core.PartitionID(g)); ok {
				t.Errorf("partition %d still advertises a holder while fenced", g)
			}
		}
		m.ResumeLeases()
		p.Sleep(2 * sim.Millisecond)
		for g := 0; g < d.Partitions(); g++ {
			if m.Holder(core.PartitionID(g)) < 0 {
				t.Errorf("partition %d was not re-granted after resume", g)
			}
		}
		done = true
	})
	if err := s.RunUntil(sim.Time(20 * sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("fencer did not finish")
	}
}

// TestProbeFallsBackWithoutLease: with no manager attached (or before the
// first grant) TryLocal must decline immediately and count a fallback.
func TestProbeFallsBackWithoutLease(t *testing.T) {
	s, d := build(t, 1, 3)
	m := lease.Attach(d, lease.Options{Start: 10 * sim.Millisecond})
	m.Start()
	cl := d.NewClient()
	rc := lease.NewReadClient(cl, m)
	done := false
	s.Spawn("client", func(p *sim.Proc) {
		p.Sleep(500 * sim.Microsecond) // well before the delayed first grant
		if _, ok := rc.TryLocal(p, 0, regOID(0, 0)); ok {
			t.Error("local read succeeded without a lease")
		}
		done = true
	})
	if err := s.RunUntil(sim.Time(5 * sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("client did not finish")
	}
	if rc.Fallback != 1 {
		t.Errorf("fallbacks = %d, want 1", rc.Fallback)
	}
}
