// State transfer walk-through: a lagger falls behind its partition and
// recovers with Heron's state synchronization protocol (Section III-B,
// Algorithm 3; evaluated in Section V-E).
//
// One replica of partition 0 is artificially slowed. Multi-partition
// requests keep overwriting an object in partition 1, so by the time the
// slow replica tries to read it remotely, BOTH versions in the dual-
// versioned slot are newer than the request it is executing — the lagger
// condition. It then writes a state-transfer request into its peers'
// state-transfer memory, a responder streams the missing slots (32 KB
// one-sided writes) plus a serialized snapshot of the auxiliary state,
// and the lagger fast-forwards past the synchronized requests.
//
// Run with:
//
//	go run ./examples/statetransfer
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"heron/internal/core"
	"heron/internal/multicast"
	"heron/internal/rdma"
	"heron/internal/sim"
	"heron/internal/store"
)

// rmwApp: every request reads a hot object in partition 1 and rewrites it
// plus a mirror object in partition 0.
type rmwApp struct {
	part core.PartitionID
}

const (
	hotOID    = store.OID(1<<32 | 1) // partition 1
	mirrorOID = store.OID(0<<32 | 1) // partition 0
)

var parter = core.PartitionerFunc(func(oid store.OID) core.PartitionID {
	return core.PartitionID(uint64(oid) >> 32)
})

func (a *rmwApp) ReadSet(req *core.Request) []store.OID {
	return []store.OID{hotOID}
}

func (a *rmwApp) Execute(ctx *core.ExecContext) core.Outcome {
	v := binary.LittleEndian.Uint64(ctx.Values[hotOID])
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, v+1)
	return core.Outcome{
		Writes:   []core.Write{{OID: hotOID, Val: buf}, {OID: mirrorOID, Val: buf}},
		Response: buf,
		CPU:      time1us(),
	}
}

func time1us() sim.Duration { return sim.Microsecond }

func main() {
	s := sim.NewScheduler()
	layout := [][]rdma.NodeID{{1, 2, 3}, {4, 5, 6}}
	cfg := core.DefaultConfig(multicast.DefaultConfig(layout))
	cfg.StoreCapacity = 1 << 12
	// Disable the anti-lagger cut-off so the slow replica actually lags
	// (the ablation benchmark shows the cut-off preventing exactly this).
	cfg.CutoffDelay = 0

	d, err := core.NewDeployment(s, cfg,
		func(part core.PartitionID, rank int) core.Application { return &rmwApp{part: part} },
		parter)
	if err != nil {
		log.Fatal(err)
	}
	err = d.PopulateAll(func(part core.PartitionID, rank int, rep *core.Replica) error {
		oid := mirrorOID
		if part == 1 {
			oid = hotOID
		}
		if err := rep.Store().Register(oid, 8); err != nil {
			return err
		}
		return rep.Store().Init(oid, make([]byte, 8))
	})
	if err != nil {
		log.Fatal(err)
	}
	d.Start()

	// Make partition 0's rank-2 replica slow: + 200us per request.
	slow := d.Replica(0, 2)
	slow.SetSlow(200 * sim.Microsecond)

	cl := d.NewClient()
	const requests = 30
	s.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < requests; i++ {
			if _, err := cl.Submit(p, []core.PartitionID{0, 1}, []byte{byte(i)}); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("t=%.2fms: client finished %d multi-partition requests\n",
			float64(p.Now())/1e6, requests)
	})
	// Let the slow replica catch up (it keeps processing after the
	// client is done; state transfers let it skip whole stretches).
	if err := s.RunUntil(sim.Time(200 * sim.Millisecond)); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("slow replica: executed=%d skipped=%d state-transfers=%d\n",
		slow.Executed(), slow.Skipped(), slow.StateTransfers())
	if slow.StateTransfers() == 0 {
		log.Fatal("expected the slow replica to recover via state transfer")
	}

	// The recovered replica's state matches a fast peer's, byte for byte.
	fast := d.Replica(0, 0)
	fv, ft, _ := fast.Store().Get(mirrorOID)
	sv, st, _ := slow.Store().Get(mirrorOID)
	fmt.Printf("fast replica mirror=%d@ts=%d, recovered replica mirror=%d@ts=%d\n",
		binary.LittleEndian.Uint64(fv), ft, binary.LittleEndian.Uint64(sv), st)
	if binary.LittleEndian.Uint64(fv) != binary.LittleEndian.Uint64(sv) || ft != st {
		log.Fatal("recovered replica diverged")
	}
	fmt.Println("recovery verified: lagger state identical to its partition peers")
}
