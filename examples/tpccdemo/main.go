// TPCC demo: the paper's evaluation workload on a small Heron deployment.
//
// Four warehouses (one per partition), three replicas each, a handful of
// closed-loop terminals running the standard TPCC mix. Prints per-type
// latency and the single- vs multi-partition split — a miniature of the
// paper's Figures 6 and 7.
//
// Run with:
//
//	go run ./examples/tpccdemo
package main

import (
	"fmt"
	"log"
	"sort"

	"heron/internal/core"
	"heron/internal/multicast"
	"heron/internal/rdma"
	"heron/internal/sim"
	"heron/internal/store"
	"heron/internal/tpcc"
)

const (
	warehouses   = 4
	replicas     = 3
	terminals    = 8
	txnsPerUser  = 150
	virtualLimit = 5 * sim.Second
)

func main() {
	s := sim.NewScheduler()
	layout := make([][]rdma.NodeID, warehouses)
	id := rdma.NodeID(1)
	for g := range layout {
		for r := 0; r < replicas; r++ {
			layout[g] = append(layout[g], id)
			id++
		}
	}
	scale := tpcc.SmallScale()
	ds := tpcc.NewDataset(7, warehouses, scale)
	cfg := core.DefaultConfig(multicast.DefaultConfig(layout))
	cfg.StoreCapacity = scale.Items*store.SlotSize(tpcc.StockMaxBytes) +
		scale.DistrictsPerWH*scale.CustomersPerDistrict*store.SlotSize(tpcc.CustomerMaxBytes) + 1<<16

	d, err := core.NewDeployment(s, cfg, tpcc.NewAppFactory(ds, tpcc.DefaultCostModel()), tpcc.Partitioner)
	if err != nil {
		log.Fatal(err)
	}
	err = d.PopulateAll(func(part core.PartitionID, rank int, rep *core.Replica) error {
		return rep.App().(*tpcc.App).Populate(rep.Store())
	})
	if err != nil {
		log.Fatal(err)
	}
	d.Start()

	type bucket struct {
		count int
		total sim.Duration
		multi int
	}
	stats := map[tpcc.TxnKind]*bucket{}
	var completed int
	var firstDone, lastDone sim.Time

	for t := 0; t < terminals; t++ {
		t := t
		cl := d.NewClient()
		w := tpcc.NewWorkload(int64(100+t), warehouses, scale)
		w.HomeWID = t%warehouses + 1
		s.Spawn(fmt.Sprintf("terminal%d", t), func(p *sim.Proc) {
			for i := 0; i < txnsPerUser; i++ {
				txn := w.Next()
				parts := txn.Partitions()
				t0 := p.Now()
				if _, err := cl.Submit(p, parts, txn.Encode()); err != nil {
					log.Fatal(err)
				}
				b := stats[txn.Kind]
				if b == nil {
					b = &bucket{}
					stats[txn.Kind] = b
				}
				b.count++
				b.total += sim.Duration(p.Now() - t0)
				if len(parts) > 1 {
					b.multi++
				}
				completed++
				if firstDone == 0 {
					firstDone = p.Now()
				}
				lastDone = p.Now()
			}
		})
	}
	if err := s.RunUntil(sim.Time(virtualLimit)); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("TPCC on Heron: %d warehouses x %d replicas, %d terminals\n", warehouses, replicas, terminals)
	fmt.Printf("%-12s  %6s  %10s  %6s\n", "type", "count", "avg lat", "multi")
	kinds := make([]tpcc.TxnKind, 0, len(stats))
	for k := range stats {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		b := stats[k]
		fmt.Printf("%-12s  %6d  %9.1fus  %6d\n", k, b.count, float64(b.total)/float64(b.count)/1000, b.multi)
	}
	elapsed := sim.Duration(lastDone - firstDone)
	fmt.Printf("\n%d transactions in %.2fms of virtual time (%.0f tps)\n",
		completed, float64(elapsed)/1e6, float64(completed)/(float64(elapsed)/1e9))
}
