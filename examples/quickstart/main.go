// Quickstart: a replicated counter service on Heron.
//
// This example builds the smallest interesting Heron system — two
// partitions, three replicas each, on a simulated RDMA fabric — and runs
// increment/read requests against it, including a multi-partition read
// that snapshots both counters consistently.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"heron/internal/core"
	"heron/internal/multicast"
	"heron/internal/rdma"
	"heron/internal/sim"
	"heron/internal/store"
)

// Object IDs: one counter per partition. The partition lives in the high
// 32 bits, mirroring how real applications embed routing in OIDs.
func counterOID(part core.PartitionID) store.OID {
	return store.OID(uint64(part)<<32 | 1)
}

// counterApp implements core.Application: op 'i' increments the local
// counter, op 'r' reads every counter in the request's read set.
type counterApp struct {
	part core.PartitionID
}

func (a *counterApp) ReadSet(req *core.Request) []store.OID {
	// Both ops read the counters of all involved partitions.
	oids := make([]store.OID, 0, len(req.Dst))
	for _, g := range req.Dst {
		oids = append(oids, counterOID(g))
	}
	return oids
}

func (a *counterApp) Execute(ctx *core.ExecContext) core.Outcome {
	op := ctx.Req.Payload[0]
	var sum uint64
	for _, v := range ctx.Values {
		if len(v) == 8 {
			sum += binary.LittleEndian.Uint64(v)
		}
	}
	out := core.Outcome{CPU: 500 * sim.Nanosecond}
	if op == 'i' {
		// Increment this partition's own counter.
		local := ctx.Values[counterOID(a.part)]
		next := binary.LittleEndian.Uint64(local) + 1
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, next)
		out.Writes = []core.Write{{OID: counterOID(a.part), Val: buf}}
		sum = next
	}
	resp := make([]byte, 8)
	binary.LittleEndian.PutUint64(resp, sum)
	out.Response = resp
	return out
}

func main() {
	// 1. A virtual-time scheduler and a 2-partition layout: nodes 1-3
	//    replicate partition 0, nodes 4-6 partition 1.
	s := sim.NewScheduler()
	layout := [][]rdma.NodeID{{1, 2, 3}, {4, 5, 6}}
	cfg := core.DefaultConfig(multicast.DefaultConfig(layout))
	cfg.StoreCapacity = 1 << 12

	// 2. Build the deployment: multicast groups, replicas, RDMA wiring.
	d, err := core.NewDeployment(s, cfg,
		func(part core.PartitionID, rank int) core.Application { return &counterApp{part: part} },
		core.PartitionerFunc(func(oid store.OID) core.PartitionID {
			return core.PartitionID(uint64(oid) >> 32)
		}))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Register and initialize each partition's counter on its
	//    replicas, then start every process.
	err = d.PopulateAll(func(part core.PartitionID, rank int, rep *core.Replica) error {
		if err := rep.Store().Register(counterOID(part), 8); err != nil {
			return err
		}
		return rep.Store().Init(counterOID(part), make([]byte, 8))
	})
	if err != nil {
		log.Fatal(err)
	}
	d.Start()

	// 4. A client drives the system in a closed loop.
	cl := d.NewClient()
	s.Spawn("client", func(p *sim.Proc) {
		// Five increments on each partition.
		for i := 0; i < 5; i++ {
			for part := core.PartitionID(0); part < 2; part++ {
				t0 := p.Now()
				resp, err := cl.Submit(p, []core.PartitionID{part}, []byte{'i'})
				if err != nil {
					log.Fatal(err)
				}
				v := binary.LittleEndian.Uint64(resp[part])
				fmt.Printf("increment partition %d -> %d  (%.1fus)\n",
					part, v, float64(p.Now()-t0)/1000)
			}
		}
		// One multi-partition read: a linearizable snapshot of both
		// counters, served with one-sided remote reads.
		t0 := p.Now()
		resp, err := cl.Submit(p, []core.PartitionID{0, 1}, []byte{'r'})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cross-partition sum = %d (from p0) / %d (from p1)  (%.1fus)\n",
			binary.LittleEndian.Uint64(resp[0]),
			binary.LittleEndian.Uint64(resp[1]),
			float64(p.Now()-t0)/1000)
	})

	// 5. Run virtual time forward.
	if err := s.RunUntil(sim.Time(100 * sim.Millisecond)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done at virtual t=%.2fms\n", float64(s.Now())/1e6)
}
