// Bank: a partitioned account service with linearizable cross-partition
// transfers — the workload class the paper's introduction motivates
// (multi-partition requests are "the Achilles heel of most partitioned
// systems").
//
// Accounts are sharded across four partitions. Transfers between accounts
// on different partitions are multi-partition requests: each involved
// partition reads both balances (one remotely, over one-sided RDMA) and
// updates only its local account. Heron's coordination phases plus dual
// versioning make every transfer linearizable; the example verifies that
// money is conserved under concurrent transfers and prints the latency
// split between same-partition and cross-partition transfers.
//
// Run with:
//
//	go run ./examples/bank
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"

	"heron/internal/core"
	"heron/internal/multicast"
	"heron/internal/rdma"
	"heron/internal/sim"
	"heron/internal/store"
)

const (
	partitions       = 4
	accountsPerPart  = 64
	initialBalance   = 1000
	clients          = 8
	transfersPerUser = 200
)

// accountOID places account a of partition p.
func accountOID(part core.PartitionID, acct uint32) store.OID {
	return store.OID(uint64(part)<<32 | uint64(acct))
}

var partitioner = core.PartitionerFunc(func(oid store.OID) core.PartitionID {
	return core.PartitionID(uint64(oid) >> 32)
})

// transfer is the request payload: move amount from src to dst.
type transfer struct {
	src, dst store.OID
	amount   int64
}

func encodeTransfer(t transfer) []byte {
	b := make([]byte, 24)
	binary.LittleEndian.PutUint64(b[0:8], uint64(t.src))
	binary.LittleEndian.PutUint64(b[8:16], uint64(t.dst))
	binary.LittleEndian.PutUint64(b[16:24], uint64(t.amount))
	return b
}

func decodeTransfer(b []byte) transfer {
	return transfer{
		src:    store.OID(binary.LittleEndian.Uint64(b[0:8])),
		dst:    store.OID(binary.LittleEndian.Uint64(b[8:16])),
		amount: int64(binary.LittleEndian.Uint64(b[16:24])),
	}
}

// bankApp implements core.Application. Every involved partition computes
// the transfer outcome from both balances, then writes only its own
// account — the paper's everyone-executes model.
type bankApp struct {
	part core.PartitionID
}

func (a *bankApp) ReadSet(req *core.Request) []store.OID {
	t := decodeTransfer(req.Payload)
	return []store.OID{t.src, t.dst}
}

func (a *bankApp) Execute(ctx *core.ExecContext) core.Outcome {
	t := decodeTransfer(ctx.Req.Payload)
	src := int64(binary.LittleEndian.Uint64(ctx.Values[t.src]))
	dst := int64(binary.LittleEndian.Uint64(ctx.Values[t.dst]))
	out := core.Outcome{CPU: 800 * sim.Nanosecond}
	ok := src >= t.amount
	if ok {
		src -= t.amount
		dst += t.amount
	}
	write := func(oid store.OID, v int64) {
		if partitioner.PartitionOf(oid) != a.part {
			return // each partition persists only its own account
		}
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, uint64(v))
		out.Writes = append(out.Writes, core.Write{OID: oid, Val: buf})
	}
	if ok {
		write(t.src, src)
		write(t.dst, dst)
		out.Response = []byte{1}
	} else {
		out.Response = []byte{0} // insufficient funds
	}
	return out
}

func main() {
	s := sim.NewScheduler()
	layout := make([][]rdma.NodeID, partitions)
	id := rdma.NodeID(1)
	for g := range layout {
		for r := 0; r < 3; r++ {
			layout[g] = append(layout[g], id)
			id++
		}
	}
	cfg := core.DefaultConfig(multicast.DefaultConfig(layout))
	cfg.StoreCapacity = accountsPerPart * store.SlotSize(8) * 2

	d, err := core.NewDeployment(s, cfg,
		func(part core.PartitionID, rank int) core.Application { return &bankApp{part: part} },
		partitioner)
	if err != nil {
		log.Fatal(err)
	}
	err = d.PopulateAll(func(part core.PartitionID, rank int, rep *core.Replica) error {
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, initialBalance)
		for a := uint32(1); a <= accountsPerPart; a++ {
			if err := rep.Store().Register(accountOID(part, a), 8); err != nil {
				return err
			}
			if err := rep.Store().Init(accountOID(part, a), buf); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	d.Start()

	var sameLat, crossLat []sim.Duration
	var rejected int
	for ci := 0; ci < clients; ci++ {
		ci := ci
		cl := d.NewClient()
		rng := rand.New(rand.NewSource(int64(ci) + 1))
		s.Spawn(fmt.Sprintf("user%d", ci), func(p *sim.Proc) {
			for i := 0; i < transfersPerUser; i++ {
				srcPart := core.PartitionID(rng.Intn(partitions))
				dstPart := core.PartitionID(rng.Intn(partitions))
				t := transfer{
					src:    accountOID(srcPart, uint32(1+rng.Intn(accountsPerPart))),
					dst:    accountOID(dstPart, uint32(1+rng.Intn(accountsPerPart))),
					amount: int64(1 + rng.Intn(50)),
				}
				if t.src == t.dst {
					continue
				}
				dst := []core.PartitionID{srcPart}
				if dstPart != srcPart {
					dst = append(dst, dstPart)
				}
				t0 := p.Now()
				resp, err := cl.Submit(p, dst, encodeTransfer(t))
				if err != nil {
					log.Fatal(err)
				}
				lat := sim.Duration(p.Now() - t0)
				if len(dst) == 1 {
					sameLat = append(sameLat, lat)
				} else {
					crossLat = append(crossLat, lat)
				}
				if resp[srcPart][0] == 0 {
					rejected++
				}
			}
		})
	}
	if err := s.RunUntil(sim.Time(2 * sim.Second)); err != nil {
		log.Fatal(err)
	}

	// Audit: every replica's books must balance to the initial total.
	wantTotal := int64(partitions * accountsPerPart * initialBalance)
	for part := core.PartitionID(0); part < partitions; part++ {
		for rank := 0; rank < 3; rank++ {
			st := d.Replica(part, rank).Store()
			for a := uint32(1); a <= accountsPerPart; a++ {
				v, _, _ := st.Get(accountOID(part, a))
				if rank == 0 {
					wantTotal -= int64(binary.LittleEndian.Uint64(v))
				}
			}
		}
	}
	mean := func(xs []sim.Duration) float64 {
		if len(xs) == 0 {
			return 0
		}
		var sum sim.Duration
		for _, x := range xs {
			sum += x
		}
		return float64(sum) / float64(len(xs)) / 1000
	}
	fmt.Printf("transfers: %d same-partition (avg %.1fus), %d cross-partition (avg %.1fus), %d rejected\n",
		len(sameLat), mean(sameLat), len(crossLat), mean(crossLat), rejected)
	if wantTotal != 0 {
		log.Fatalf("AUDIT FAILED: %d unaccounted", wantTotal)
	}
	fmt.Println("audit passed: money conserved across all partitions and replicas")
}
