// Package heron's root benchmark suite: one testing.B benchmark per table
// and figure of the paper's evaluation, wrapping the internal/bench
// runners on reduced configurations (benchmarks report the key measured
// quantities as custom metrics; run `heron-bench` for full-size runs).
package heron_test

import (
	"testing"

	"heron/internal/bench"
	"heron/internal/sim"
)

// reportHeron attaches a run's virtual-time results as benchmark metrics.
func reportHeron(b *testing.B, r *bench.HeronRun) {
	b.Helper()
	b.ReportMetric(r.Throughput, "vreq/s")
	b.ReportMetric(float64(r.Latency.Mean())/1000, "vlat-us")
	b.ReportMetric(float64(r.Latency.Percentile(99))/1000, "vp99-us")
}

// BenchmarkFig4TPCC measures Heron's TPCC throughput at 2 warehouses
// (Figure 4, third series).
func BenchmarkFig4TPCC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := bench.DefaultOptions(2)
		opt.Window = 40 * sim.Millisecond
		r, err := bench.RunHeron(opt)
		if err != nil {
			b.Fatal(err)
		}
		reportHeron(b, r)
	}
}

// BenchmarkFig4Ramcast measures the ordering layer alone (Figure 4,
// first series).
func BenchmarkFig4Ramcast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := bench.DefaultOptions(2)
		opt.Window = 40 * sim.Millisecond
		r, err := bench.RunRamcast(opt)
		if err != nil {
			b.Fatal(err)
		}
		reportHeron(b, r)
	}
}

// BenchmarkFig4HeronNull measures ordering + coordination with null
// execution (Figure 4, second series).
func BenchmarkFig4HeronNull(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := bench.DefaultOptions(2)
		opt.Window = 40 * sim.Millisecond
		opt.NullRequests = true
		r, err := bench.RunHeron(opt)
		if err != nil {
			b.Fatal(err)
		}
		reportHeron(b, r)
	}
}

// BenchmarkFig4LocalTPCC measures the local-only workload (Figure 4,
// fourth series).
func BenchmarkFig4LocalTPCC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := bench.DefaultOptions(2)
		opt.Window = 40 * sim.Millisecond
		opt.LocalOnly = true
		r, err := bench.RunHeron(opt)
		if err != nil {
			b.Fatal(err)
		}
		reportHeron(b, r)
	}
}

// BenchmarkFig5DynaStar measures the message-passing baseline (Figure 5).
func BenchmarkFig5DynaStar(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := bench.DefaultOptions(2)
		opt.Window = 80 * sim.Millisecond
		opt.ClientsPerPartition = 12
		r, err := bench.RunDynaStar(opt)
		if err != nil {
			b.Fatal(err)
		}
		reportHeron(b, r)
	}
}

// BenchmarkFig6Breakdown measures the single-client latency breakdown
// (Figure 6).
func BenchmarkFig6Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig6(60, nil)
		if err != nil {
			b.Fatal(err)
		}
		tpcc := res.Rows[0]
		b.ReportMetric(float64(tpcc.Ordering)/1000, "vorder-us")
		b.ReportMetric(float64(tpcc.Coordination)/1000, "vcoord-us")
		b.ReportMetric(float64(tpcc.Execution)/1000, "vexec-us")
		b.ReportMetric(float64(tpcc.Total)/1000, "vtotal-us")
	}
}

// BenchmarkFig7TxnLatency measures per-transaction-type latency
// (Figure 7), reporting New-Order single/multi.
func BenchmarkFig7TxnLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig7(4, 80, nil)
		if err != nil {
			b.Fatal(err)
		}
		no := res.Rows[0]
		b.ReportMetric(float64(no.SingleLatency)/1000, "vsingle-us")
		b.ReportMetric(float64(no.MultiLatency)/1000, "vmulti-us")
	}
}

// BenchmarkTable1Delays measures the wait-for-all delay statistics
// (Table I), reporting the 2-partition/3-replica configuration.
func BenchmarkTable1Delays(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTable1(40*sim.Millisecond, nil)
		if err != nil {
			b.Fatal(err)
		}
		cfg := res.Configs[0]
		b.ReportMetric(cfg.Throughput, "vreq/s")
		b.ReportMetric(cfg.Rows[0].DelayedPct, "vdelayed-pct")
		b.ReportMetric(float64(cfg.Rows[0].AverageDelay)/1000, "vdelay-us")
	}
}

// BenchmarkFig8StateTransfer measures state-transfer latency (Figure 8),
// reporting the 64 KB serialized case.
func BenchmarkFig8StateTransfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig8(2, false, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Rows[0].Latency)/1000, "vprotocol-us")
		b.ReportMetric(float64(res.Rows[1].Latency)/1000, "v64kb-us")
	}
}

// BenchmarkAblationCutoff measures the anti-lagger cut-off sweep.
func BenchmarkAblationCutoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunCutoffAblation(
			[]sim.Duration{0, 10 * sim.Microsecond, 50 * sim.Microsecond}, 0, 30*sim.Millisecond, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Rows[0].StateTransfers), "vtransfers-nocutoff")
		b.ReportMetric(float64(res.Rows[len(res.Rows)-1].StateTransfers), "vtransfers-cutoff")
	}
}
