module heron

go 1.22
